// The simulated wireless link.
//
// Transfers charge the *client's* radio chain (the server is wall-powered):
// uplink at the power-amplifier class chosen by power control, downlink at
// the receiver-chain power. An optional loss probability models prolonged
// loss of connectivity (paper Section 3.2: when a response does not arrive
// within a threshold, the client falls back to local execution).
#pragma once

#include "energy/energy.hpp"
#include "radio/radio.hpp"
#include "support/rng.hpp"

namespace javelin::net {

class Link {
 public:
  explicit Link(radio::CommModel comm = radio::CommModel{},
                std::uint64_t seed = 1)
      : comm_(comm), rng_(seed) {}

  /// Probability that a whole request/response exchange is lost.
  void set_loss_probability(double p) { loss_ = p; }
  double loss_probability() const { return loss_; }

  struct Transfer {
    double seconds = 0.0;
    bool lost = false;
  };

  /// Uplink: client transmits `bytes` with PA setting `pa`. Charges the
  /// client meter. The energy is spent even if the transfer is lost.
  Transfer client_send(std::uint64_t bytes, radio::PowerClass pa,
                       energy::EnergyMeter& client_meter) {
    Transfer t;
    t.seconds = comm_.tx_seconds(bytes);
    client_meter.add(energy::Subsystem::kCommTx, comm_.tx_energy(bytes, pa));
    t.lost = loss_ > 0.0 && rng_.bernoulli(loss_);
    return t;
  }

  /// Downlink: client receives `bytes`. Charges the client meter.
  Transfer client_recv(std::uint64_t bytes, energy::EnergyMeter& client_meter) {
    Transfer t;
    t.seconds = comm_.rx_seconds(bytes);
    client_meter.add(energy::Subsystem::kCommRx, comm_.rx_energy(bytes));
    return t;
  }

  const radio::CommModel& comm() const { return comm_; }

 private:
  radio::CommModel comm_;
  double loss_ = 0.0;
  Rng rng_;
};

}  // namespace javelin::net
