#include "net/serializer.hpp"

#include <unordered_map>

#include "support/bytes.hpp"

namespace javelin::net {

namespace {

using jvm::Jvm;
using jvm::TypeKind;
using jvm::Value;
using energy::InstrClass;

enum : std::uint8_t {
  kTagNull = 0,
  kTagInt = 1,
  kTagDouble = 2,
  kTagArray = 3,
  kTagObject = 4,
  kTagBackref = 5,
};

/// Gather instance fields of a class including inherited ones, root-first.
void collect_instance_fields(const Jvm& vm, std::int32_t class_id,
                             std::vector<const jvm::RtField*>& out) {
  const jvm::RtClass& rc = vm.cls(class_id);
  if (rc.super_id >= 0) collect_instance_fields(vm, rc.super_id, out);
  for (std::int32_t fid : rc.field_ids) {
    const jvm::RtField& f = vm.field(fid);
    if (!f.is_static) out.push_back(&f);
  }
}

class Encoder {
 public:
  Encoder(const Jvm& vm, bool charge) : vm_(vm), charge_(charge) {}

  void value(Value v) {
    switch (v.kind) {
      case TypeKind::kInt:
        w_.u8(kTagInt);
        w_.i32(v.i);
        touch_alu(1);
        break;
      case TypeKind::kDouble:
        w_.u8(kTagDouble);
        w_.f64(v.d);
        touch_alu(1);
        break;
      case TypeKind::kRef:
        ref(v.ref);
        break;
      default:
        throw Error("serializer: cannot serialize void");
    }
  }

  std::vector<std::uint8_t> take() { return w_.take(); }

 private:
  void touch_alu(std::uint64_t n) {
    if (charge_) vm_.core().charge_class(InstrClass::kAluSimple, n);
  }
  void read_heap(mem::Addr a) {
    if (charge_) {
      vm_.core().stall(vm_.core().hier->load(a));
      vm_.core().charge_class(InstrClass::kLoad);
      vm_.core().charge_class(InstrClass::kStore);  // buffer append
    }
  }

  void ref(mem::Addr a) {
    if (a == mem::kNullAddr) {
      w_.u8(kTagNull);
      touch_alu(1);
      return;
    }
    const auto it = seen_.find(a);
    if (it != seen_.end()) {
      w_.u8(kTagBackref);
      w_.u32(it->second);
      touch_alu(2);
      return;
    }
    seen_[a] = next_id_++;

    // Array or object? Arrays keep their length (>= 0) in the second header
    // word; objects keep the kObjPadSentinel there.
    const std::uint32_t hdr2 = vm_.arena().load_u32(a + 4);
    if (hdr2 != jvm::kObjPadSentinel) {
      array(a);
    } else {
      object(a);
    }
  }

  void array(mem::Addr a) {
    const TypeKind ek = vm_.array_elem_kind(a);
    const std::int32_t len = vm_.array_length(a);
    w_.u8(kTagArray);
    w_.u8(static_cast<std::uint8_t>(ek));
    w_.i32(len);
    touch_alu(4);
    const mem::Addr data = a + jvm::kArrHeaderBytes;
    for (std::int32_t i = 0; i < len; ++i) {
      const std::uint32_t width = jvm::type_width(ek);
      const mem::Addr ea = data + static_cast<mem::Addr>(i) * width;
      read_heap(ea);
      switch (ek) {
        case TypeKind::kInt:
          w_.i32(vm_.arena().load_i32(ea));
          break;
        case TypeKind::kDouble:
          w_.f64(vm_.arena().load_f64(ea));
          break;
        case TypeKind::kByte:
          w_.u8(vm_.arena().load_u8(ea));
          break;
        case TypeKind::kRef:
          ref(vm_.arena().load_u32(ea));
          break;
        default:
          throw Error("serializer: bad element kind");
      }
    }
  }

  void object(mem::Addr a) {
    const std::int32_t cid = vm_.obj_class_id(a);
    const jvm::RtClass& rc = vm_.cls(cid);
    w_.u8(kTagObject);
    w_.str(rc.cf.name);
    touch_alu(4);
    std::vector<const jvm::RtField*> fields;
    collect_instance_fields(vm_, cid, fields);
    for (const jvm::RtField* f : fields) {
      const mem::Addr fa = a + f->offset;
      read_heap(fa);
      switch (f->kind) {
        case TypeKind::kInt:
          w_.i32(vm_.arena().load_i32(fa));
          break;
        case TypeKind::kDouble:
          w_.f64(vm_.arena().load_f64(fa));
          break;
        case TypeKind::kByte:
          w_.u8(vm_.arena().load_u8(fa));
          break;
        case TypeKind::kRef:
          ref(vm_.arena().load_u32(fa));
          break;
        default:
          throw Error("serializer: bad field kind");
      }
    }
  }

  const Jvm& vm_;
  bool charge_;
  ByteWriter w_;
  std::unordered_map<mem::Addr, std::uint32_t> seen_;
  std::uint32_t next_id_ = 0;
};

class Decoder {
 public:
  Decoder(Jvm& vm, const std::vector<std::uint8_t>& bytes, bool charge)
      : vm_(vm), r_(bytes), charge_(charge) {
    // When this vm's heap carries shadow-bounds metadata, the byte stream
    // feeding it is part of the checked surface: a payload overrun becomes a
    // BoundsFault (handled as a guest fault, aborting the invocation) rather
    // than a FormatError that the corrupt-frame retry path would absorb.
    if (vm.arena().shadow() != nullptr) r_.set_checked(true);
  }

  Value value() {
    const std::uint8_t tag = r_.u8();
    switch (tag) {
      case kTagNull:
        return Value::make_ref(mem::kNullAddr);
      case kTagInt: {
        touch_alu(1);
        return Value::make_int(r_.i32());
      }
      case kTagDouble: {
        touch_alu(1);
        return Value::make_double(r_.f64());
      }
      case kTagBackref: {
        const std::uint32_t id = r_.u32();
        if (id >= objects_.size()) throw FormatError("serializer: bad backref");
        touch_alu(2);
        return Value::make_ref(objects_[id]);
      }
      case kTagArray:
        return Value::make_ref(array());
      case kTagObject:
        return Value::make_ref(object());
      default:
        throw FormatError("serializer: bad tag");
    }
  }

  bool at_end() const { return r_.at_end(); }

 private:
  void touch_alu(std::uint64_t n) {
    if (charge_) vm_.core().charge_class(InstrClass::kAluSimple, n);
  }
  void write_heap(mem::Addr a) {
    if (charge_) {
      vm_.core().stall(vm_.core().hier->store(a));
      vm_.core().charge_class(InstrClass::kStore);
      vm_.core().charge_class(InstrClass::kLoad);  // buffer read
    }
  }

  mem::Addr array() {
    const auto ek = static_cast<TypeKind>(r_.u8());
    const std::int32_t len = r_.i32();
    if (len < 0) throw FormatError("serializer: negative array length");
    const mem::Addr a = vm_.new_array(ek, len, /*charge=*/false);
    objects_.push_back(a);
    touch_alu(4);
    const mem::Addr data = a + jvm::kArrHeaderBytes;
    const std::uint32_t width = jvm::type_width(ek);
    for (std::int32_t i = 0; i < len; ++i) {
      const mem::Addr ea = data + static_cast<mem::Addr>(i) * width;
      write_heap(ea);
      switch (ek) {
        case TypeKind::kInt:
          vm_.arena().store_i32(ea, r_.i32());
          break;
        case TypeKind::kDouble:
          vm_.arena().store_f64(ea, r_.f64());
          break;
        case TypeKind::kByte:
          vm_.arena().store_u8(ea, r_.u8());
          break;
        case TypeKind::kRef: {
          const Value v = value();
          vm_.arena().store_u32(ea, v.as_ref());
          break;
        }
        default:
          throw FormatError("serializer: bad element kind");
      }
    }
    return a;
  }

  mem::Addr object() {
    const std::string name = r_.str();
    const std::int32_t cid = vm_.find_class(name);
    if (cid < 0) throw FormatError("serializer: unknown class " + name);
    const mem::Addr a = vm_.new_object(cid, /*charge=*/false);
    objects_.push_back(a);
    touch_alu(4);
    std::vector<const jvm::RtField*> fields;
    collect_instance_fields(vm_, cid, fields);
    for (const jvm::RtField* f : fields) {
      const mem::Addr fa = a + f->offset;
      write_heap(fa);
      switch (f->kind) {
        case TypeKind::kInt:
          vm_.arena().store_i32(fa, r_.i32());
          break;
        case TypeKind::kDouble:
          vm_.arena().store_f64(fa, r_.f64());
          break;
        case TypeKind::kByte:
          vm_.arena().store_u8(fa, r_.u8());
          break;
        case TypeKind::kRef: {
          const Value v = value();
          vm_.arena().store_u32(fa, v.as_ref());
          break;
        }
        default:
          throw FormatError("serializer: bad field kind");
      }
    }
    return a;
  }

  Jvm& vm_;
  ByteReader r_;
  bool charge_;
  std::vector<mem::Addr> objects_;
};

}  // namespace

std::vector<std::uint8_t> serialize_value(const Jvm& vm, Value v, bool charge) {
  Encoder enc(vm, charge);
  enc.value(v);
  return enc.take();
}

Value deserialize_value(Jvm& vm, const std::vector<std::uint8_t>& bytes,
                        bool charge) {
  Decoder dec(vm, bytes, charge);
  Value v = dec.value();
  if (!dec.at_end()) throw FormatError("serializer: trailing bytes");
  return v;
}

}  // namespace javelin::net
