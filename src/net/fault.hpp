// Deterministic fault injection for the offloading path.
//
// The paper's failure model (Section 3.2) is a single event: a response that
// does not arrive within a threshold triggers one timeout and a local
// fallback. Real WCDMA links and offloading servers fail in *bursts*,
// *outages*, and *partial corruptions*, and the client energy spent handling
// those failures is exactly what an energy-aware runtime must model. This
// module provides a seed-driven schedule of fault episodes:
//
//  * burst packet loss — a Gilbert–Elliott two-state process (good/bad
//    channel states with per-state loss probabilities) layered on top of the
//    link's legacy Bernoulli loss, advanced once per message so losses
//    cluster;
//  * server outage windows — deterministic periodic intervals during which
//    the server accepts nothing (a pure function of simulated time: no RNG,
//    so outage placement is identical across strategies and worker counts);
//  * payload corruption — delivered frames are bit-flipped or truncated;
//    the CRC32-framed wire protocol turns these into FormatError, which the
//    client treats as a retryable failure;
//  * latency spikes — occasional extra response delay that can push an
//    otherwise-fine exchange past the client's timeout.
//
// Determinism contract: an injector's decisions are a pure function of its
// seed and the *sequence* of queries made to it. Each simulation cell owns a
// private injector seeded from its cell coordinates (see
// sim::ScenarioRunner), so sweeps remain bit-identical at any JAVELIN_JOBS.
// With `FaultPlan::enabled == false` nothing is attached anywhere and the
// fault-free energy numbers are untouched.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace.hpp"
#include "support/rng.hpp"

namespace javelin::net {

/// Bytes of CRC32 framing appended to every wire message. Charged over the
/// air only when fault injection is active (net::Link adds it per message);
/// in fault-free mode the paper's Fig 8 byte counts stay pinned.
inline constexpr std::uint64_t kFrameCrcBytes = 4;

/// A declarative schedule of fault episodes. Plain data so benches can build
/// grids of plans; all probabilities are per-message.
struct FaultPlan {
  bool enabled = false;     ///< Master switch; false = inject nothing.
  std::uint64_t seed = 1;   ///< Stream seed for every stochastic choice.

  // Gilbert–Elliott burst loss. The chain steps once per message (uplink and
  // downlink both count); in the bad state losses cluster.
  double ge_p_good_to_bad = 0.0;  ///< P(good -> bad) per message.
  double ge_p_bad_to_good = 0.3;  ///< P(bad -> good) per message.
  double ge_loss_good = 0.0;      ///< Loss probability in the good state.
  double ge_loss_bad = 0.9;       ///< Loss probability in the bad state.

  // Server outage windows: down during [k*period + phase, k*period + phase +
  // duration) for every integer k >= 0. period <= 0 disables outages.
  double outage_period_s = 0.0;
  double outage_duration_s = 0.0;
  double outage_phase_s = 0.0;

  // Payload corruption of *delivered* frames, per direction.
  double corrupt_uplink_p = 0.0;
  double corrupt_downlink_p = 0.0;

  // Latency spikes: with probability spike_p a response is delayed by an
  // extra spike_seconds (models RLC retransmission stalls / server GC).
  double spike_p = 0.0;
  double spike_seconds = 0.0;

  /// Whether the server is inside an outage window at absolute time `t`.
  /// Deterministic in `t` alone.
  bool server_down(double t) const;
};

/// Stateful sampler for a FaultPlan. One instance per simulated link/cell;
/// not thread-safe (cells never share one).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  const FaultPlan& plan() const { return plan_; }

  /// Sample loss of one uplink / downlink message. Advances the
  /// Gilbert–Elliott chain exactly one step per call, with a fixed number of
  /// RNG draws per call regardless of state (keeps streams aligned).
  bool uplink_lost() { return message_lost(); }
  bool downlink_lost() { return message_lost(); }

  /// Sample corruption of one delivered message, per direction.
  bool corrupt_uplink() { return sample(plan_.corrupt_uplink_p); }
  bool corrupt_downlink() { return sample(plan_.corrupt_downlink_p); }

  /// Extra response delay for this exchange (0.0 = no spike).
  double latency_spike();

  /// Damage `bytes` in place: flip one bit or truncate to a strict prefix.
  /// Guaranteed to change the frame (so CRC32 verification must fail).
  void corrupt(std::vector<std::uint8_t>& bytes);

  /// Return to the exact post-construction state (fresh session).
  void reset();

  /// Whether the Gilbert–Elliott chain is currently in the bad state.
  bool in_bad_state() const { return bad_; }

  /// Observational counters (telemetry only; no behavioural effect).
  struct Counters {
    std::uint64_t messages = 0;
    std::uint64_t losses = 0;
    std::uint64_t corruptions = 0;
    std::uint64_t spikes = 0;
  };
  const Counters& counters() const { return counters_; }

  /// Observability hook (null = disabled, the default). Mirrors Counters
  /// into the trace buffer; reads nothing, draws nothing.
  void set_trace(obs::TraceBuffer* t) { trace_ = t; }

 private:
  bool message_lost();
  /// One RNG draw, consumed whether or not p is zero, so decision streams do
  /// not depend on which fault knobs are active.
  bool sample(double p) { return rng_.next_double() < p; }

  FaultPlan plan_;
  Rng rng_;
  bool bad_ = false;
  Counters counters_;
  obs::TraceBuffer* trace_ = nullptr;
};

}  // namespace javelin::net
