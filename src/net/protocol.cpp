#include "net/protocol.hpp"

#include <cstring>

#include "net/fault.hpp"

namespace javelin::net {

namespace {
constexpr std::uint8_t kMsgInvokeReq = 1;
constexpr std::uint8_t kMsgInvokeResp = 2;
constexpr std::uint8_t kMsgCompileReq = 3;
constexpr std::uint8_t kMsgCompileResp = 4;

void expect(ByteReader& r, std::uint8_t tag) {
  if (r.u8() != tag) throw FormatError("protocol: unexpected message type");
}

/// Append the CRC32 frame trailer over the encoded body.
std::vector<std::uint8_t> seal_frame(ByteWriter&& w) {
  const std::uint32_t crc = crc32(w.data().data(), w.size());
  w.u32(crc);
  return w.take();
}

/// Verify the CRC32 trailer and return a reader over the body only. Any
/// truncation or bit flip anywhere in the frame fails here, so decoders only
/// ever see checksummed bytes.
ByteReader open_frame(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kFrameCrcBytes + 1)
    throw FormatError("protocol: frame too short");
  const std::size_t body = bytes.size() - kFrameCrcBytes;
  std::uint32_t stored;
  std::memcpy(&stored, bytes.data() + body, kFrameCrcBytes);
  if (stored != crc32(bytes.data(), body))
    throw FormatError("protocol: CRC32 mismatch (corrupt frame)");
  return ByteReader(bytes, body);
}
}  // namespace

void encode_program(const isa::NativeProgram& p, ByteWriter& w) {
  w.u32(static_cast<std::uint32_t>(p.code.size()));
  for (const isa::NInstr& in : p.code) {
    w.u8(static_cast<std::uint8_t>(in.op));
    w.u8(in.rd);
    w.u8(in.ra);
    w.u8(in.rb);
    w.i32(in.imm);
  }
  w.u32(static_cast<std::uint32_t>(p.literals.size()));
  for (double d : p.literals) w.f64(d);
  w.u32(p.spill_bytes);
}

isa::NativeProgram decode_program(ByteReader& r) {
  isa::NativeProgram p;
  const std::uint32_t n = r.u32();
  if (static_cast<std::size_t>(n) * 8 > r.remaining())
    throw FormatError("protocol: truncated program");
  p.code.resize(n);
  for (auto& in : p.code) {
    in.op = static_cast<isa::NOp>(r.u8());
    in.rd = r.u8();
    in.ra = r.u8();
    in.rb = r.u8();
    in.imm = r.i32();
  }
  const std::uint32_t nl = r.u32();
  if (static_cast<std::size_t>(nl) * 8 > r.remaining())
    throw FormatError("protocol: truncated literal pool");
  p.literals.resize(nl);
  for (auto& d : p.literals) d = r.f64();
  p.spill_bytes = r.u32();
  return p;
}

std::vector<std::uint8_t> InvokeRequest::encode() const {
  ByteWriter w;
  w.u8(kMsgInvokeReq);
  w.str(cls);
  w.str(method);
  w.f64(estimated_server_seconds);
  w.u32(static_cast<std::uint32_t>(args.size()));
  for (const auto& a : args) {
    w.u32(static_cast<std::uint32_t>(a.size()));
    w.bytes(a.data(), a.size());
  }
  return seal_frame(std::move(w));
}

InvokeRequest InvokeRequest::decode(const std::vector<std::uint8_t>& bytes) {
  ByteReader r = open_frame(bytes);
  expect(r, kMsgInvokeReq);
  InvokeRequest m;
  m.cls = r.str();
  m.method = r.str();
  m.estimated_server_seconds = r.f64();
  const std::uint32_t n = r.u32();
  if (n > 64) throw FormatError("protocol: too many arguments");
  m.args.resize(n);
  for (auto& a : m.args) {
    const std::uint32_t len = r.u32();
    if (len > r.remaining()) throw FormatError("protocol: truncated argument");
    a.resize(len);
    r.bytes(a.data(), len);
  }
  return m;
}

std::uint64_t InvokeRequest::wire_bytes() const {
  std::uint64_t total = 1 + 4 + cls.size() + 4 + method.size() + 8 + 4;
  for (const auto& a : args) total += 4 + a.size();
  return total;
}

std::vector<std::uint8_t> InvokeResponse::encode() const {
  ByteWriter w;
  w.u8(kMsgInvokeResp);
  w.u8(ok ? 1 : 0);
  w.str(error);
  w.u32(static_cast<std::uint32_t>(result.size()));
  w.bytes(result.data(), result.size());
  return seal_frame(std::move(w));
}

InvokeResponse InvokeResponse::decode(const std::vector<std::uint8_t>& bytes) {
  ByteReader r = open_frame(bytes);
  expect(r, kMsgInvokeResp);
  InvokeResponse m;
  m.ok = r.u8() != 0;
  m.error = r.str();
  const std::uint32_t len = r.u32();
  if (len > r.remaining()) throw FormatError("protocol: truncated result");
  m.result.resize(len);
  r.bytes(m.result.data(), len);
  return m;
}

std::uint64_t InvokeResponse::wire_bytes() const {
  return 1 + 1 + 4 + error.size() + 4 + result.size();
}

std::vector<std::uint8_t> CompileRequest::encode() const {
  ByteWriter w;
  w.u8(kMsgCompileReq);
  w.str(cls);
  w.str(method);
  w.i32(level);
  return seal_frame(std::move(w));
}

CompileRequest CompileRequest::decode(const std::vector<std::uint8_t>& bytes) {
  ByteReader r = open_frame(bytes);
  expect(r, kMsgCompileReq);
  CompileRequest m;
  m.cls = r.str();
  m.method = r.str();
  m.level = r.i32();
  return m;
}

std::uint64_t CompileRequest::wire_bytes() const {
  return 1 + 4 + cls.size() + 4 + method.size() + 4;
}

std::vector<std::uint8_t> CompileResponse::encode() const {
  ByteWriter w;
  w.u8(kMsgCompileResp);
  w.u8(ok ? 1 : 0);
  w.str(error);
  w.i32(level);
  w.f64(server_seconds);
  w.u32(static_cast<std::uint32_t>(units.size()));
  for (const auto& u : units) {
    w.str(u.cls);
    w.str(u.method);
    encode_program(u.program, w);
  }
  return seal_frame(std::move(w));
}

CompileResponse CompileResponse::decode(const std::vector<std::uint8_t>& bytes) {
  ByteReader r = open_frame(bytes);
  expect(r, kMsgCompileResp);
  CompileResponse m;
  m.ok = r.u8() != 0;
  m.error = r.str();
  m.level = r.i32();
  m.server_seconds = r.f64();
  const std::uint32_t n = r.u32();
  if (n > 4096) throw FormatError("protocol: too many compiled units");
  m.units.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    CompiledUnit u;
    u.cls = r.str();
    u.method = r.str();
    u.program = decode_program(r);
    m.units.push_back(std::move(u));
  }
  return m;
}

std::uint64_t CompileResponse::wire_bytes() const {
  std::uint64_t total = 1 + 1 + 4 + error.size() + 4 + 4;
  for (const auto& u : units)
    total += 4 + u.cls.size() + 4 + u.method.size() + u.program.image_bytes();
  return total;
}

}  // namespace javelin::net
