// Wire protocol between the mobile client and the server (paper Fig 4/5).
//
// Four message types:
//   InvokeRequest   client -> server : method name + serialized parameters
//   InvokeResponse  server -> client : serialized return value (or error)
//   CompileRequest  client -> server : fully qualified method name + level
//   CompileResponse server -> client : pre-compiled native code bundle (the
//                                      requested method plus the methods in
//                                      its compilation plan), with linkage
//                                      info (method names) so the client JVM
//                                      can install it.
//
// `wire_bytes()` of each message is what the radio model charges for. For
// CompileResponse the charged size is the *machine-code image* size (4 bytes
// per instruction + literal pool), matching what a real SPARC binary would
// occupy; the functional encoding carries whatever the simulator needs.
//
// Every `encode()` seals the message in a CRC32 frame (a 4-byte trailer over
// the body) and every `decode()` verifies it before parsing, so truncated or
// bit-flipped frames raise FormatError instead of crashing — corruption is a
// detectable, retryable failure. The trailer is *not* part of `wire_bytes()`;
// net::Link charges the extra kFrameCrcBytes per message only when fault
// injection is active, keeping fault-free Fig 8 numbers pinned.
#pragma once

#include <string>
#include <vector>

#include "isa/nisa.hpp"
#include "support/bytes.hpp"

namespace javelin::net {

struct InvokeRequest {
  std::string cls;
  std::string method;
  std::vector<std::vector<std::uint8_t>> args;  ///< Serialized values.
  /// Client's estimate of the server execution time (seconds); the server
  /// stores it in the mobile status table to decide response queueing.
  double estimated_server_seconds = 0.0;

  std::vector<std::uint8_t> encode() const;
  static InvokeRequest decode(const std::vector<std::uint8_t>& bytes);
  /// Bytes that travel over the air.
  std::uint64_t wire_bytes() const;
};

struct InvokeResponse {
  bool ok = true;
  std::string error;
  std::vector<std::uint8_t> result;  ///< Serialized value (may be empty/void).

  std::vector<std::uint8_t> encode() const;
  static InvokeResponse decode(const std::vector<std::uint8_t>& bytes);
  std::uint64_t wire_bytes() const;
};

struct CompileRequest {
  std::string cls;
  std::string method;
  int level = 1;

  std::vector<std::uint8_t> encode() const;
  static CompileRequest decode(const std::vector<std::uint8_t>& bytes);
  std::uint64_t wire_bytes() const;
};

/// One compiled method shipped to the client.
struct CompiledUnit {
  std::string cls;
  std::string method;
  isa::NativeProgram program;  ///< Uninstalled (code_base unset).
};

struct CompileResponse {
  bool ok = true;
  std::string error;
  int level = 1;
  /// Server-side compilation time (the client idles while waiting).
  double server_seconds = 0.0;
  std::vector<CompiledUnit> units;

  std::vector<std::uint8_t> encode() const;
  static CompileResponse decode(const std::vector<std::uint8_t>& bytes);
  /// Over-the-air size: machine-code image bytes plus linkage headers.
  std::uint64_t wire_bytes() const;
};

void encode_program(const isa::NativeProgram& p, ByteWriter& w);
isa::NativeProgram decode_program(ByteReader& r);

}  // namespace javelin::net
