// Path-Finder: given a map (dense adjacency matrix) and a source node,
// computes the shortest-path tree distances (Dijkstra, O(V^2) selection).
// Size parameter: number of nodes squared (paper: "number of nodes and
// number of edges").

#include "apps/app.hpp"
#include "jvm/builder.hpp"

namespace javelin::apps {

namespace {

using jvm::Signature;
using jvm::TypeKind;
using jvm::Value;

constexpr std::int32_t kInf = 1 << 29;

jvm::ClassFile build_class() {
  jvm::ClassBuilder cb("PF");

  // static int[] shortest(int[] w, int n, int src)
  auto& m = cb.method(
      "shortest",
      Signature{{TypeKind::kRef, TypeKind::kInt, TypeKind::kInt},
                TypeKind::kRef});
  m.param_name(0, "w").param_name(1, "n").param_name(2, "src");
  m.potential(jvm::SizeParamSpec{{{1, false}, {1, false}}});  // s = n^2

  m.iload("n").newarray(TypeKind::kInt).astore("dist");
  m.iload("n").newarray(TypeKind::kInt).astore("vis");

  // for (i = 0; i < n; ++i) dist[i] = INF
  auto initl = m.new_label(), initd = m.new_label();
  m.iconst(0).istore("i");
  m.bind(initl);
  m.iload("i").iload("n").if_icmpge(initd);
  m.aload("dist").iload("i").iconst(kInf).iastore();
  m.iload("i").iconst(1).iadd().istore("i");
  m.goto_(initl);
  m.bind(initd);

  m.aload("dist").iload("src").iconst(0).iastore();

  // for (iter = 0; iter < n; ++iter)
  auto outer = m.new_label(), outer_done = m.new_label();
  m.iconst(0).istore("iter");
  m.bind(outer);
  m.iload("iter").iload("n").if_icmpge(outer_done);

  // select the unvisited node with minimum distance
  m.iconst(-1).istore("best");
  m.iconst(kInf).iconst(1).iadd().istore("bestd");
  auto sel = m.new_label(), sel_done = m.new_label(), sel_skip = m.new_label();
  m.iconst(0).istore("j");
  m.bind(sel);
  m.iload("j").iload("n").if_icmpge(sel_done);
  m.aload("vis").iload("j").iaload().ifne(sel_skip);
  m.aload("dist").iload("j").iaload().iload("bestd").if_icmpge(sel_skip);
  m.aload("dist").iload("j").iaload().istore("bestd");
  m.iload("j").istore("best");
  m.bind(sel_skip);
  m.iload("j").iconst(1).iadd().istore("j");
  m.goto_(sel);
  m.bind(sel_done);

  // if (best < 0) break
  m.iload("best").iflt(outer_done);
  m.aload("vis").iload("best").iconst(1).iastore();

  // relax all edges out of best
  auto rel = m.new_label(), rel_done = m.new_label(), rel_skip = m.new_label();
  m.iconst(0).istore("j");
  m.bind(rel);
  m.iload("j").iload("n").if_icmpge(rel_done);
  // wt = w[best * n + j]; if (wt <= 0) skip
  m.aload("w").iload("best").iload("n").imul().iload("j").iadd().iaload()
      .istore("wt");
  m.iload("wt").ifle(rel_skip);
  // cand = dist[best] + wt; if (cand < dist[j]) dist[j] = cand
  m.aload("dist").iload("best").iaload().iload("wt").iadd().istore("cand");
  m.iload("cand").aload("dist").iload("j").iaload().if_icmpge(rel_skip);
  m.aload("dist").iload("j").iload("cand").iastore();
  m.bind(rel_skip);
  m.iload("j").iconst(1).iadd().istore("j");
  m.goto_(rel);
  m.bind(rel_done);

  m.iload("iter").iconst(1).iadd().istore("iter");
  m.goto_(outer);
  m.bind(outer_done);
  m.aload("dist").aret();

  return cb.build();
}

std::vector<std::int32_t> golden(const std::vector<std::int32_t>& w,
                                 std::int32_t n, std::int32_t src) {
  std::vector<std::int32_t> dist(n, kInf), vis(n, 0);
  dist[src] = 0;
  for (std::int32_t iter = 0; iter < n; ++iter) {
    std::int32_t best = -1, bestd = kInf + 1;
    for (std::int32_t j = 0; j < n; ++j)
      if (!vis[j] && dist[j] < bestd) {
        bestd = dist[j];
        best = j;
      }
    if (best < 0) break;
    vis[best] = 1;
    for (std::int32_t j = 0; j < n; ++j) {
      const std::int32_t wt = w[static_cast<std::size_t>(best) * n + j];
      if (wt <= 0) continue;
      const std::int32_t cand = dist[best] + wt;
      if (cand < dist[j]) dist[j] = cand;
    }
  }
  return dist;
}

}  // namespace

App make_pf() {
  App a;
  a.name = "pf";
  a.description =
      "Given a map and a source node, finds the shortest path tree rooted at "
      "the source";
  a.cls = "PF";
  a.method = "shortest";
  a.classes = {build_class()};
  a.make_args = [](jvm::Jvm& vm, double scale, Rng& rng) {
    const auto n = static_cast<std::int32_t>(scale);
    std::vector<std::int32_t> w(static_cast<std::size_t>(n) * n, 0);
    // Sparse-ish random digraph: ~6 out-edges per node plus a ring for
    // connectivity.
    for (std::int32_t i = 0; i < n; ++i) {
      w[static_cast<std::size_t>(i) * n + (i + 1) % n] =
          static_cast<std::int32_t>(rng.uniform_int(1, 100));
      for (int e = 0; e < 6; ++e) {
        const auto j = static_cast<std::int32_t>(rng.uniform_int(0, n - 1));
        if (j != i)
          w[static_cast<std::size_t>(i) * n + j] =
              static_cast<std::int32_t>(rng.uniform_int(1, 100));
      }
    }
    const mem::Addr arr = vm.new_array(TypeKind::kInt,
                                       static_cast<std::int32_t>(w.size()),
                                       /*charge=*/false);
    vm.write_i32_array(arr, w);
    return std::vector<Value>{Value::make_ref(arr), Value::make_int(n),
                              Value::make_int(0)};
  };
  a.check = [](const jvm::Jvm& avm, std::span<const Value> args,
               const jvm::Jvm& rvm, Value result) {
    const auto w = avm.read_i32_array(args[0].as_ref());
    const auto expected = golden(w, args[1].as_int(), args[2].as_int());
    return rvm.read_i32_array(result.as_ref()) == expected;
  };
  a.profile_scales = {24, 40, 64, 80, 96};
  a.small_scale = 24;
  a.large_scale = 128;
  return a;
}

}  // namespace javelin::apps
