// The benchmark suite (paper Fig 3).
//
// Eight applications, each written in guest bytecode via the assembler API
// (this module plays the role of the application developer):
//   fe    Function-Evaluator — numeric integration of f over a range
//   pf    Path-Finder        — shortest path tree (Dijkstra, O(V^2))
//   mf    Median-Filter      — windowed median over a PGM-style image
//   hpf   High-Pass-Filter   — image minus threshold-scaled low-pass
//   ed    Edge-Detector      — Canny-style Sobel + NMS + hysteresis
//   sort  Sorting            — quicksort (+ insertion sort cutoff)
//   jess  expert-system shell miniature — forward-chaining rule engine
//   db    database miniature — conjunctive predicate scans over columns
//
// Each App bundles: the class files, the potential-method entry point, a
// deterministic workload generator (used both for deploy-time profiling and
// for scenario runs), and a C++ golden model for correctness checking.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "jvm/classfile.hpp"
#include "jvm/vm.hpp"
#include "rt/profiler.hpp"
#include "support/rng.hpp"

namespace javelin::apps {

struct App {
  std::string name;
  std::string description;
  std::string cls;     ///< Class of the potential method.
  std::string method;  ///< The potential method.
  std::vector<jvm::ClassFile> classes;

  /// Build invocation args at a given scale in the target JVM's heap
  /// (host-side, uncharged). Deterministic for a given Rng state.
  std::function<std::vector<jvm::Value>(jvm::Jvm&, double scale, Rng&)>
      make_args;

  /// Verify a result against the C++ golden model (args must be the ones the
  /// invocation used; reads both from the JVM heap). Returns true if correct.
  /// When the result graph lives in a different JVM than the args (remote
  /// execution), pass the args' JVM and result's JVM separately.
  std::function<bool(const jvm::Jvm& args_vm, std::span<const jvm::Value> args,
                     const jvm::Jvm& result_vm, jvm::Value result)>
      check;

  std::vector<double> profile_scales;  ///< Deploy-time profiling scales.
  double small_scale = 0;  ///< Fig 6 "small input".
  double large_scale = 0;  ///< Fig 6 "large input".

  rt::ProfileWorkload workload() const {
    return rt::ProfileWorkload{profile_scales, make_args};
  }
};

/// All eight benchmarks, in the paper's Fig 3 order.
const std::vector<App>& registry();

/// Lookup by short name; throws if unknown.
const App& app(const std::string& name);

// Individual builders (one per translation unit).
App make_fe();
App make_pf();
App make_mf();
App make_hpf();
App make_ed();
App make_sort();
App make_jess();
App make_db();

}  // namespace javelin::apps
