// Function-Evaluator: given a function f, a range and a step count, computes
// the integral of f over the range by the trapezoid rule.
// Size parameter: the step count (paper: "step size and range").

#include <cmath>

#include "apps/app.hpp"
#include "jvm/builder.hpp"

namespace javelin::apps {

namespace {

using jvm::Signature;
using jvm::TypeKind;
using jvm::Value;

jvm::ClassFile build_class() {
  jvm::ClassBuilder cb("FE");

  {
    // static double f(double x) =
    //   sin(x)*exp(-0.25*x) + log(1 + x*x) * sqrt(1 + cos(x)^2)
    //   + pow(1 + 0.5*x, 1.5)
    // (a transcendental-heavy integrand: evaluating f dominates the method,
    //  which is what makes Function-Evaluator offload-friendly).
    auto& m = cb.method("f", Signature{{TypeKind::kDouble}, TypeKind::kDouble});
    m.param_name(0, "x");
    m.dload("x").intrinsic(isa::Intrinsic::kSin);
    m.dload("x").dconst(-0.25).dmul().intrinsic(isa::Intrinsic::kExp);
    m.dmul();
    m.dconst(1.0).dload("x").dload("x").dmul().dadd()
        .intrinsic(isa::Intrinsic::kLog);
    m.dload("x").intrinsic(isa::Intrinsic::kCos).dstore("c");
    m.dconst(1.0).dload("c").dload("c").dmul().dadd()
        .intrinsic(isa::Intrinsic::kSqrt);
    m.dmul();
    m.dadd();
    m.dconst(1.0).dload("x").dconst(0.5).dmul().dadd().dconst(1.5)
        .intrinsic(isa::Intrinsic::kPow);
    m.dadd();
    m.dret();
  }
  {
    // static double integrate(double lo, double hi, int steps)
    auto& m = cb.method(
        "integrate",
        Signature{{TypeKind::kDouble, TypeKind::kDouble, TypeKind::kInt},
                  TypeKind::kDouble});
    m.param_name(0, "lo").param_name(1, "hi").param_name(2, "steps");
    m.potential(jvm::SizeParamSpec{{{2, false}}});

    // h = (hi - lo) / steps
    m.dload("hi").dload("lo").dsub();
    m.iload("steps").i2d().ddiv().dstore("h");
    // acc = (f(lo) + f(hi)) * 0.5
    m.dload("lo").invokestatic("FE", "f");
    m.dload("hi").invokestatic("FE", "f");
    m.dadd().dconst(0.5).dmul().dstore("acc");
    // for (i = 1; i < steps; ++i) acc += f(lo + i * h)
    auto loop = m.new_label(), done = m.new_label();
    m.iconst(1).istore("i");
    m.bind(loop);
    m.iload("i").iload("steps").if_icmpge(done);
    m.dload("acc");
    m.dload("lo").iload("i").i2d().dload("h").dmul().dadd();
    m.invokestatic("FE", "f");
    m.dadd().dstore("acc");
    m.iload("i").iconst(1).iadd().istore("i");
    m.goto_(loop);
    m.bind(done);
    m.dload("acc").dload("h").dmul().dret();
  }
  return cb.build();
}

double golden_f(double x) {
  const double c = std::cos(x);
  return std::sin(x) * std::exp(-0.25 * x) +
         std::log(1.0 + x * x) * std::sqrt(1.0 + c * c) +
         std::pow(1.0 + 0.5 * x, 1.5);
}

double golden_integrate(double lo, double hi, std::int32_t steps) {
  const double h = (hi - lo) / static_cast<double>(steps);
  double acc = (golden_f(lo) + golden_f(hi)) * 0.5;
  for (std::int32_t i = 1; i < steps; ++i)
    acc += golden_f(lo + static_cast<double>(i) * h);
  return acc * h;
}

}  // namespace

App make_fe() {
  App a;
  a.name = "fe";
  a.description =
      "Given a function f, a range and a step count, calculates the integral "
      "of f over the range";
  a.cls = "FE";
  a.method = "integrate";
  a.classes = {build_class()};
  a.make_args = [](jvm::Jvm&, double scale, Rng& rng) {
    const auto steps = static_cast<std::int32_t>(scale);
    const double lo = rng.uniform_real(0.0, 1.0);
    return std::vector<Value>{Value::make_double(lo),
                              Value::make_double(lo + 4.0),
                              Value::make_int(steps)};
  };
  a.check = [](const jvm::Jvm&, std::span<const Value> args, const jvm::Jvm&,
               Value result) {
    const double expected = golden_integrate(args[0].as_double(),
                                             args[1].as_double(),
                                             args[2].as_int());
    const double got = result.as_double();
    return std::fabs(got - expected) <=
           1e-9 * (1.0 + std::fabs(expected));
  };
  a.profile_scales = {200, 400, 800, 1600, 3200};
  a.small_scale = 300;
  a.large_scale = 12000;
  return a;
}

}  // namespace javelin::apps
