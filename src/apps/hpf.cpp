// High-Pass-Filter: given a PGM-style byte image and a threshold coefficient,
// attenuates the low-frequency content: out = clamp(in - t * lowpass(in)),
// with a clamped 3x3 box low-pass evaluated in double precision. Inputs and
// outputs travel as bytes (the PGM payload the paper describes); the kernel
// itself is floating point.
// Size parameter: image area.

#include <cmath>

#include "apps/app.hpp"
#include "jvm/builder.hpp"

namespace javelin::apps {

namespace {

using jvm::Signature;
using jvm::TypeKind;
using jvm::Value;

jvm::ClassFile build_class() {
  jvm::ClassBuilder cb("HPF");

  {
    // static int clamp255(int v)
    auto& m =
        cb.method("clamp255", Signature{{TypeKind::kInt}, TypeKind::kInt});
    m.param_name(0, "v");
    m.iconst(0).iconst(255).iload("v")
        .intrinsic(isa::Intrinsic::kImin)
        .intrinsic(isa::Intrinsic::kImax)
        .iret();
  }

  // static byte[] highpass(byte[] img, int w, int h, double t)
  auto& m = cb.method(
      "highpass",
      Signature{{TypeKind::kRef, TypeKind::kInt, TypeKind::kInt,
                 TypeKind::kDouble},
                TypeKind::kRef});
  m.param_name(0, "img").param_name(1, "w").param_name(2, "h")
      .param_name(3, "t");
  m.potential(jvm::SizeParamSpec{{{1, false}, {2, false}}});

  m.iload("w").iload("h").imul().newarray(TypeKind::kByte).astore("out");

  auto yloop = m.new_label(), ydone = m.new_label();
  auto xloop = m.new_label(), xdone = m.new_label();
  auto dyloop = m.new_label(), dydone = m.new_label();
  auto dxloop = m.new_label(), dxdone = m.new_label();

  m.iconst(0).istore("y");
  m.bind(yloop);
  m.iload("y").iload("h").if_icmpge(ydone);
  m.iconst(0).istore("x");
  m.bind(xloop);
  m.iload("x").iload("w").if_icmpge(xdone);

  // acc = sum of the clamped 3x3 neighbourhood (double)
  m.dconst(0.0).dstore("acc");
  m.iconst(-1).istore("dy");
  m.bind(dyloop);
  m.iload("dy").iconst(1).if_icmpgt(dydone);
  m.iconst(-1).istore("dx");
  m.bind(dxloop);
  m.iload("dx").iconst(1).if_icmpgt(dxdone);
  m.iconst(0).iload("h").iconst(1).isub()
      .iload("y").iload("dy").iadd()
      .intrinsic(isa::Intrinsic::kImin)
      .intrinsic(isa::Intrinsic::kImax)
      .istore("yy");
  m.iconst(0).iload("w").iconst(1).isub()
      .iload("x").iload("dx").iadd()
      .intrinsic(isa::Intrinsic::kImin)
      .intrinsic(isa::Intrinsic::kImax)
      .istore("xx");
  m.dload("acc")
      .aload("img").iload("yy").iload("w").imul().iload("xx").iadd().baload()
      .i2d()
      .dadd().dstore("acc");
  m.iload("dx").iconst(1).iadd().istore("dx");
  m.goto_(dxloop);
  m.bind(dxdone);
  m.iload("dy").iconst(1).iadd().istore("dy");
  m.goto_(dyloop);
  m.bind(dydone);

  // out[idx] = clamp255((int)(img[idx] - t * acc / 9))
  m.iload("y").iload("w").imul().iload("x").iadd().istore("idx");
  m.aload("out").iload("idx");
  m.aload("img").iload("idx").baload().i2d();
  m.dload("t").dload("acc").dmul().dconst(9.0).ddiv();
  m.dsub().d2i().invokestatic("HPF", "clamp255");
  m.bastore();

  m.iload("x").iconst(1).iadd().istore("x");
  m.goto_(xloop);
  m.bind(xdone);
  m.iload("y").iconst(1).iadd().istore("y");
  m.goto_(yloop);
  m.bind(ydone);
  m.aload("out").aret();

  return cb.build();
}

std::vector<std::uint8_t> golden(const std::vector<std::uint8_t>& img,
                                 std::int32_t w, std::int32_t h, double t) {
  std::vector<std::uint8_t> out(static_cast<std::size_t>(w) * h, 0);
  for (std::int32_t y = 0; y < h; ++y) {
    for (std::int32_t x = 0; x < w; ++x) {
      double acc = 0.0;
      for (std::int32_t dy = -1; dy <= 1; ++dy) {
        for (std::int32_t dx = -1; dx <= 1; ++dx) {
          const std::int32_t yy = std::max(0, std::min(h - 1, y + dy));
          const std::int32_t xx = std::max(0, std::min(w - 1, x + dx));
          acc = acc + static_cast<double>(
                          img[static_cast<std::size_t>(yy) * w + xx]);
        }
      }
      const std::int32_t idx = y * w + x;
      const auto v = static_cast<std::int32_t>(
          static_cast<double>(img[idx]) - t * acc / 9.0);
      out[idx] = static_cast<std::uint8_t>(std::max(0, std::min(255, v)));
    }
  }
  return out;
}

}  // namespace

App make_hpf() {
  App a;
  a.name = "hpf";
  a.description =
      "Given an image and a threshold, attenuates all frequencies below the "
      "threshold";
  a.cls = "HPF";
  a.method = "highpass";
  a.classes = {build_class()};
  a.make_args = [](jvm::Jvm& vm, double scale, Rng& rng) {
    const auto side = static_cast<std::int32_t>(scale);
    std::vector<std::uint8_t> img(static_cast<std::size_t>(side) * side);
    for (std::int32_t y = 0; y < side; ++y)
      for (std::int32_t x = 0; x < side; ++x)
        img[static_cast<std::size_t>(y) * side + x] =
            static_cast<std::uint8_t>(
                (x * 5 + y * 3 +
                 static_cast<std::int32_t>(rng.uniform_int(0, 50))) &
                0xff);
    const mem::Addr arr = vm.new_array(TypeKind::kByte,
                                       static_cast<std::int32_t>(img.size()),
                                       /*charge=*/false);
    vm.write_u8_array(arr, img);
    return std::vector<Value>{Value::make_ref(arr), Value::make_int(side),
                              Value::make_int(side),
                              Value::make_double(0.85)};
  };
  a.check = [](const jvm::Jvm& avm, std::span<const Value> args,
               const jvm::Jvm& rvm, Value result) {
    const auto img = avm.read_u8_array(args[0].as_ref());
    const auto expected =
        golden(img, args[1].as_int(), args[2].as_int(), args[3].as_double());
    return rvm.read_u8_array(result.as_ref()) == expected;
  };
  a.profile_scales = {8, 16, 24, 32, 48};
  a.small_scale = 16;
  a.large_scale = 128;
  return a;
}

}  // namespace javelin::apps
