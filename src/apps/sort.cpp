// Sorting: quicksort with an insertion-sort cutoff, the classic utility
// package. The potential method copies its input and returns the sorted copy
// (offloading ships inputs out and results back; in-place mutation would not
// survive serialization, so the API is functional).
// Size parameter: array length.

#include <algorithm>

#include "apps/app.hpp"
#include "jvm/builder.hpp"

namespace javelin::apps {

namespace {

using jvm::Signature;
using jvm::TypeKind;
using jvm::Value;

constexpr std::int32_t kCutoff = 12;

jvm::ClassFile build_class() {
  jvm::ClassBuilder cb("Sort");

  {
    // static void insertion(int[] a, int lo, int hi)
    auto& m = cb.method(
        "insertion",
        Signature{{TypeKind::kRef, TypeKind::kInt, TypeKind::kInt},
                  TypeKind::kVoid});
    m.param_name(0, "a").param_name(1, "lo").param_name(2, "hi");
    auto outer = m.new_label(), done = m.new_label();
    auto inner = m.new_label(), inner_done = m.new_label();
    m.iload("lo").iconst(1).iadd().istore("i");
    m.bind(outer);
    m.iload("i").iload("hi").if_icmpgt(done);
    m.aload("a").iload("i").iaload().istore("v");
    m.iload("i").iconst(1).isub().istore("j");
    m.bind(inner);
    m.iload("j").iload("lo").if_icmplt(inner_done);
    m.aload("a").iload("j").iaload().iload("v").if_icmple(inner_done);
    m.aload("a").iload("j").iconst(1).iadd()
        .aload("a").iload("j").iaload().iastore();
    m.iload("j").iconst(1).isub().istore("j");
    m.goto_(inner);
    m.bind(inner_done);
    m.aload("a").iload("j").iconst(1).iadd().iload("v").iastore();
    m.iload("i").iconst(1).iadd().istore("i");
    m.goto_(outer);
    m.bind(done);
    m.ret();
  }
  {
    // static void qsort(int[] a, int lo, int hi)
    auto& m = cb.method(
        "qsort",
        Signature{{TypeKind::kRef, TypeKind::kInt, TypeKind::kInt},
                  TypeKind::kVoid});
    m.param_name(0, "a").param_name(1, "lo").param_name(2, "hi");
    auto big = m.new_label(), ret = m.new_label();
    // if (hi - lo >= cutoff) goto big; insertion(a, lo, hi); return
    m.iload("hi").iload("lo").isub().iconst(kCutoff).if_icmpge(big);
    m.aload("a").iload("lo").iload("hi").invokestatic("Sort", "insertion");
    m.goto_(ret);
    m.bind(big);
    // Hoare-like partition with pivot = a[(lo+hi)>>>1] moved to hi.
    // mid = (lo + hi) >>> 1; swap a[mid], a[hi]; pivot = a[hi]
    m.iload("lo").iload("hi").iadd().iconst(1).iushr().istore("mid");
    m.aload("a").iload("mid").iaload().istore("tmp");
    m.aload("a").iload("mid").aload("a").iload("hi").iaload().iastore();
    m.aload("a").iload("hi").iload("tmp").iastore();
    m.aload("a").iload("hi").iaload().istore("pivot");
    // Lomuto partition
    auto ploop = m.new_label(), pdone = m.new_label(), pskip = m.new_label();
    m.iload("lo").istore("store");
    m.iload("lo").istore("i");
    m.bind(ploop);
    m.iload("i").iload("hi").if_icmpge(pdone);
    m.aload("a").iload("i").iaload().iload("pivot").if_icmpge(pskip);
    // swap a[i], a[store]; ++store
    m.aload("a").iload("i").iaload().istore("tmp");
    m.aload("a").iload("i").aload("a").iload("store").iaload().iastore();
    m.aload("a").iload("store").iload("tmp").iastore();
    m.iload("store").iconst(1).iadd().istore("store");
    m.bind(pskip);
    m.iload("i").iconst(1).iadd().istore("i");
    m.goto_(ploop);
    m.bind(pdone);
    // swap a[store], a[hi]
    m.aload("a").iload("store").iaload().istore("tmp");
    m.aload("a").iload("store").aload("a").iload("hi").iaload().iastore();
    m.aload("a").iload("hi").iload("tmp").iastore();
    // recurse
    m.aload("a").iload("lo").iload("store").iconst(1).isub()
        .invokestatic("Sort", "qsort");
    m.aload("a").iload("store").iconst(1).iadd().iload("hi")
        .invokestatic("Sort", "qsort");
    m.bind(ret);
    m.ret();
  }
  {
    // static int[] sortcopy(int[] a)
    auto& m =
        cb.method("sortcopy", Signature{{TypeKind::kRef}, TypeKind::kRef});
    m.param_name(0, "a");
    m.potential(jvm::SizeParamSpec{{{0, true}}});  // s = a.length
    auto copy = m.new_label(), copy_done = m.new_label(), small = m.new_label();
    m.aload("a").arraylength().istore("n");
    m.iload("n").newarray(TypeKind::kInt).astore("b");
    m.iconst(0).istore("i");
    m.bind(copy);
    m.iload("i").iload("n").if_icmpge(copy_done);
    m.aload("b").iload("i").aload("a").iload("i").iaload().iastore();
    m.iload("i").iconst(1).iadd().istore("i");
    m.goto_(copy);
    m.bind(copy_done);
    m.iload("n").iconst(2).if_icmplt(small);
    m.aload("b").iconst(0).iload("n").iconst(1).isub()
        .invokestatic("Sort", "qsort");
    m.bind(small);
    m.aload("b").aret();
  }
  return cb.build();
}

}  // namespace

App make_sort() {
  App a;
  a.name = "sort";
  a.description = "Sorts a set of array elements using quicksort";
  a.cls = "Sort";
  a.method = "sortcopy";
  a.classes = {build_class()};
  a.make_args = [](jvm::Jvm& vm, double scale, Rng& rng) {
    const auto n = static_cast<std::int32_t>(scale);
    std::vector<std::int32_t> v(static_cast<std::size_t>(n));
    for (auto& x : v)
      x = static_cast<std::int32_t>(rng.uniform_int(-1'000'000, 1'000'000));
    const mem::Addr arr = vm.new_array(TypeKind::kInt, n, /*charge=*/false);
    vm.write_i32_array(arr, v);
    return std::vector<Value>{Value::make_ref(arr)};
  };
  a.check = [](const jvm::Jvm& avm, std::span<const Value> args,
               const jvm::Jvm& rvm, Value result) {
    auto expected = avm.read_i32_array(args[0].as_ref());
    std::sort(expected.begin(), expected.end());
    return rvm.read_i32_array(result.as_ref()) == expected;
  };
  a.profile_scales = {256, 512, 1024, 1536, 2048};
  a.small_scale = 256;
  a.large_scale = 8192;
  return a;
}

}  // namespace javelin::apps
