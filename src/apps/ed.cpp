// Edge-Detector: Canny-style pipeline — Sobel gradients, L1 gradient
// magnitude, direction-quantized non-maximum suppression, and a one-pass
// double-threshold hysteresis. Integer kernel over a byte image.
// Size parameter: image area.

#include "apps/app.hpp"
#include "jvm/builder.hpp"

namespace javelin::apps {

namespace {

using jvm::Signature;
using jvm::TypeKind;
using jvm::Value;

constexpr std::int32_t kHi = 192;
constexpr std::int32_t kLo = 96;

jvm::ClassFile build_class() {
  jvm::ClassBuilder cb("ED");

  {
    // static int[] magnitude(byte[] img, int w, int h)
    // Sobel |gx| + |gy| with zeroed one-pixel border.
    auto& m = cb.method(
        "magnitude",
        Signature{{TypeKind::kRef, TypeKind::kInt, TypeKind::kInt},
                  TypeKind::kRef});
    m.param_name(0, "img").param_name(1, "w").param_name(2, "h");
    m.iload("w").iload("h").imul().newarray(TypeKind::kInt).astore("mag");

    auto yloop = m.new_label(), ydone = m.new_label();
    auto xloop = m.new_label(), xdone = m.new_label();
    m.iconst(1).istore("y");
    m.bind(yloop);
    m.iload("y").iload("h").iconst(1).isub().if_icmpge(ydone);
    m.iconst(1).istore("x");
    m.bind(xloop);
    m.iload("x").iload("w").iconst(1).isub().if_icmpge(xdone);

    // idx = y*w + x
    m.iload("y").iload("w").imul().iload("x").iadd().istore("idx");
    // gx = (p[-w+1] + 2*p[+1] + p[w+1]) - (p[-w-1] + 2*p[-1] + p[w-1])
    m.aload("img").iload("idx").iload("w").isub().iconst(1).iadd().baload();
    m.aload("img").iload("idx").iconst(1).iadd().baload().iconst(2).imul();
    m.iadd();
    m.aload("img").iload("idx").iload("w").iadd().iconst(1).iadd().baload();
    m.iadd();
    m.aload("img").iload("idx").iload("w").isub().iconst(1).isub().baload();
    m.aload("img").iload("idx").iconst(1).isub().baload().iconst(2).imul();
    m.iadd();
    m.aload("img").iload("idx").iload("w").iadd().iconst(1).isub().baload();
    m.iadd();
    m.isub().istore("gx");
    // gy = (p[w-1] + 2*p[w] + p[w+1]) - (p[-w-1] + 2*p[-w] + p[-w+1])
    m.aload("img").iload("idx").iload("w").iadd().iconst(1).isub().baload();
    m.aload("img").iload("idx").iload("w").iadd().baload().iconst(2).imul();
    m.iadd();
    m.aload("img").iload("idx").iload("w").iadd().iconst(1).iadd().baload();
    m.iadd();
    m.aload("img").iload("idx").iload("w").isub().iconst(1).isub().baload();
    m.aload("img").iload("idx").iload("w").isub().baload().iconst(2).imul();
    m.iadd();
    m.aload("img").iload("idx").iload("w").isub().iconst(1).iadd().baload();
    m.iadd();
    m.isub().istore("gy");
    // mag[idx] = iabs(gx) + iabs(gy); direction kept via sign trick below.
    m.aload("mag").iload("idx");
    m.iload("gx").intrinsic(isa::Intrinsic::kIabs);
    m.iload("gy").intrinsic(isa::Intrinsic::kIabs);
    m.iadd().iastore();

    m.iload("x").iconst(1).iadd().istore("x");
    m.goto_(xloop);
    m.bind(xdone);
    m.iload("y").iconst(1).iadd().istore("y");
    m.goto_(yloop);
    m.bind(ydone);
    m.aload("mag").aret();
  }

  {
    // static int[] direction(byte[] img, int w, int h)
    // 1 if |gx| >= |gy| (horizontal gradient -> compare left/right), else 0.
    auto& m = cb.method(
        "direction",
        Signature{{TypeKind::kRef, TypeKind::kInt, TypeKind::kInt},
                  TypeKind::kRef});
    m.param_name(0, "img").param_name(1, "w").param_name(2, "h");
    m.iload("w").iload("h").imul().newarray(TypeKind::kInt).astore("dir");
    auto yloop = m.new_label(), ydone = m.new_label();
    auto xloop = m.new_label(), xdone = m.new_label();
    auto horiz = m.new_label(), store = m.new_label();
    m.iconst(1).istore("y");
    m.bind(yloop);
    m.iload("y").iload("h").iconst(1).isub().if_icmpge(ydone);
    m.iconst(1).istore("x");
    m.bind(xloop);
    m.iload("x").iload("w").iconst(1).isub().if_icmpge(xdone);
    m.iload("y").iload("w").imul().iload("x").iadd().istore("idx");
    // gx ~ p[+1] - p[-1]; gy ~ p[+w] - p[-w]  (cheap central difference)
    m.aload("img").iload("idx").iconst(1).iadd().baload();
    m.aload("img").iload("idx").iconst(1).isub().baload();
    m.isub().intrinsic(isa::Intrinsic::kIabs).istore("agx");
    m.aload("img").iload("idx").iload("w").iadd().baload();
    m.aload("img").iload("idx").iload("w").isub().baload();
    m.isub().intrinsic(isa::Intrinsic::kIabs).istore("agy");
    m.iload("agx").iload("agy").if_icmpge(horiz);
    m.iconst(0).istore("d");
    m.goto_(store);
    m.bind(horiz);
    m.iconst(1).istore("d");
    m.bind(store);
    m.aload("dir").iload("idx").iload("d").iastore();
    m.iload("x").iconst(1).iadd().istore("x");
    m.goto_(xloop);
    m.bind(xdone);
    m.iload("y").iconst(1).iadd().istore("y");
    m.goto_(yloop);
    m.bind(ydone);
    m.aload("dir").aret();
  }

  {
    // static byte[] edges(byte[] img, int w, int h)
    auto& m = cb.method(
        "edges",
        Signature{{TypeKind::kRef, TypeKind::kInt, TypeKind::kInt},
                  TypeKind::kRef});
    m.param_name(0, "img").param_name(1, "w").param_name(2, "h");
    m.potential(jvm::SizeParamSpec{{{1, false}, {2, false}}});

    m.aload("img").iload("w").iload("h").invokestatic("ED", "magnitude")
        .astore("mag");
    m.aload("img").iload("w").iload("h").invokestatic("ED", "direction")
        .astore("dir");
    m.iload("w").iload("h").imul().newarray(TypeKind::kByte).astore("out");

    auto yloop = m.new_label(), ydone = m.new_label();
    auto xloop = m.new_label(), xdone = m.new_label();
    auto vert = m.new_label(), nms = m.new_label();
    auto zero = m.new_label(), weak = m.new_label(), strong = m.new_label();
    auto next = m.new_label();
    m.iconst(1).istore("y");
    m.bind(yloop);
    m.iload("y").iload("h").iconst(1).isub().if_icmpge(ydone);
    m.iconst(1).istore("x");
    m.bind(xloop);
    m.iload("x").iload("w").iconst(1).isub().if_icmpge(xdone);
    m.iload("y").iload("w").imul().iload("x").iadd().istore("idx");
    m.aload("mag").iload("idx").iaload().istore("v");

    // Non-maximum suppression along the quantized direction.
    m.aload("dir").iload("idx").iaload().ifeq(vert);
    m.aload("mag").iload("idx").iconst(1).isub().iaload().istore("n1");
    m.aload("mag").iload("idx").iconst(1).iadd().iaload().istore("n2");
    m.goto_(nms);
    m.bind(vert);
    m.aload("mag").iload("idx").iload("w").isub().iaload().istore("n1");
    m.aload("mag").iload("idx").iload("w").iadd().iaload().istore("n2");
    m.bind(nms);
    m.iload("v").iload("n1").if_icmplt(zero);
    m.iload("v").iload("n2").if_icmplt(zero);

    // Double threshold with one-pass hysteresis: strong if v >= hi; weak
    // promoted if any 4-neighbour magnitude >= hi.
    m.iload("v").iconst(kHi).if_icmpge(strong);
    m.iload("v").iconst(kLo).if_icmplt(zero);
    m.aload("mag").iload("idx").iconst(1).isub().iaload().iconst(kHi)
        .if_icmpge(strong);
    m.aload("mag").iload("idx").iconst(1).iadd().iaload().iconst(kHi)
        .if_icmpge(strong);
    m.aload("mag").iload("idx").iload("w").isub().iaload().iconst(kHi)
        .if_icmpge(strong);
    m.aload("mag").iload("idx").iload("w").iadd().iaload().iconst(kHi)
        .if_icmpge(strong);
    m.goto_(weak);

    m.bind(zero);
    m.aload("out").iload("idx").iconst(0).bastore();
    m.goto_(next);
    m.bind(weak);
    m.aload("out").iload("idx").iconst(128).bastore();
    m.goto_(next);
    m.bind(strong);
    m.aload("out").iload("idx").iconst(255).bastore();
    m.bind(next);

    m.iload("x").iconst(1).iadd().istore("x");
    m.goto_(xloop);
    m.bind(xdone);
    m.iload("y").iconst(1).iadd().istore("y");
    m.goto_(yloop);
    m.bind(ydone);
    m.aload("out").aret();
  }

  return cb.build();
}

std::vector<std::uint8_t> golden(const std::vector<std::uint8_t>& img,
                                 std::int32_t w, std::int32_t h) {
  const auto at = [&](std::int32_t i) { return static_cast<std::int32_t>(img[i]); };
  std::vector<std::int32_t> mag(static_cast<std::size_t>(w) * h, 0);
  std::vector<std::int32_t> dir(static_cast<std::size_t>(w) * h, 0);
  for (std::int32_t y = 1; y < h - 1; ++y) {
    for (std::int32_t x = 1; x < w - 1; ++x) {
      const std::int32_t idx = y * w + x;
      const std::int32_t gx = (at(idx - w + 1) + 2 * at(idx + 1) + at(idx + w + 1)) -
                              (at(idx - w - 1) + 2 * at(idx - 1) + at(idx + w - 1));
      const std::int32_t gy = (at(idx + w - 1) + 2 * at(idx + w) + at(idx + w + 1)) -
                              (at(idx - w - 1) + 2 * at(idx - w) + at(idx - w + 1));
      mag[idx] = std::abs(gx) + std::abs(gy);
      const std::int32_t agx = std::abs(at(idx + 1) - at(idx - 1));
      const std::int32_t agy = std::abs(at(idx + w) - at(idx - w));
      dir[idx] = agx >= agy ? 1 : 0;
    }
  }
  std::vector<std::uint8_t> out(static_cast<std::size_t>(w) * h, 0);
  for (std::int32_t y = 1; y < h - 1; ++y) {
    for (std::int32_t x = 1; x < w - 1; ++x) {
      const std::int32_t idx = y * w + x;
      const std::int32_t v = mag[idx];
      const std::int32_t n1 = dir[idx] ? mag[idx - 1] : mag[idx - w];
      const std::int32_t n2 = dir[idx] ? mag[idx + 1] : mag[idx + w];
      if (v < n1 || v < n2) {
        out[idx] = 0;
        continue;
      }
      if (v >= kHi) {
        out[idx] = 255;
      } else if (v < kLo) {
        out[idx] = 0;
      } else if (mag[idx - 1] >= kHi || mag[idx + 1] >= kHi ||
                 mag[idx - w] >= kHi || mag[idx + w] >= kHi) {
        out[idx] = 255;
      } else {
        out[idx] = 128;
      }
    }
  }
  return out;
}

std::vector<std::uint8_t> scene(std::int32_t w, std::int32_t h, Rng& rng) {
  std::vector<std::uint8_t> img(static_cast<std::size_t>(w) * h);
  // Two flat regions with a slanted boundary plus noise: real edges exist.
  for (std::int32_t y = 0; y < h; ++y)
    for (std::int32_t x = 0; x < w; ++x) {
      const bool bright = 3 * x + 2 * y > 2 * w;
      const std::int32_t base = bright ? 200 : 40;
      img[static_cast<std::size_t>(y) * w + x] = static_cast<std::uint8_t>(
          base + static_cast<std::int32_t>(rng.uniform_int(0, 20)));
    }
  return img;
}

}  // namespace

App make_ed() {
  App a;
  a.name = "ed";
  a.description = "Given an image, detects its edges (Canny-style)";
  a.cls = "ED";
  a.method = "edges";
  a.classes = {build_class()};
  a.make_args = [](jvm::Jvm& vm, double scale, Rng& rng) {
    const auto side = static_cast<std::int32_t>(scale);
    auto img = scene(side, side, rng);
    const mem::Addr arr = vm.new_array(TypeKind::kByte,
                                       static_cast<std::int32_t>(img.size()),
                                       /*charge=*/false);
    vm.write_u8_array(arr, img);
    return std::vector<Value>{Value::make_ref(arr), Value::make_int(side),
                              Value::make_int(side)};
  };
  a.check = [](const jvm::Jvm& avm, std::span<const Value> args,
               const jvm::Jvm& rvm, Value result) {
    const auto img = avm.read_u8_array(args[0].as_ref());
    const auto expected = golden(img, args[1].as_int(), args[2].as_int());
    return rvm.read_u8_array(result.as_ref()) == expected;
  };
  a.profile_scales = {16, 24, 40, 56, 72};
  a.small_scale = 16;
  a.large_scale = 96;
  return a;
}

}  // namespace javelin::apps
