// db: a miniature of the SpecJVM98 database benchmark — an in-memory table
// of three integer columns scanned with a conjunctive predicate query; the
// query returns {match count, sum of column A over matches, min of column B
// over matches}. Size parameters: database size and query length (Fig 3).

#include <algorithm>

#include "apps/app.hpp"
#include "jvm/builder.hpp"

namespace javelin::apps {

namespace {

using jvm::Signature;
using jvm::TypeKind;
using jvm::Value;

jvm::ClassFile build_class() {
  jvm::ClassBuilder cb("Db");

  {
    // static int getcol(int[] a, int[] b, int[] c, int col, int row)
    auto& m = cb.method(
        "getcol",
        Signature{{TypeKind::kRef, TypeKind::kRef, TypeKind::kRef,
                   TypeKind::kInt, TypeKind::kInt},
                  TypeKind::kInt});
    m.param_name(0, "a").param_name(1, "b").param_name(2, "c")
        .param_name(3, "col").param_name(4, "row");
    auto colb = m.new_label(), colc = m.new_label();
    m.iload("col").iconst(1).if_icmpeq(colb);
    m.iload("col").iconst(2).if_icmpeq(colc);
    m.aload("a").iload("row").iaload().iret();
    m.bind(colb);
    m.aload("b").iload("row").iaload().iret();
    m.bind(colc);
    m.aload("c").iload("row").iaload().iret();
  }
  {
    // static int[] query(int[] a, int[] b, int[] c, int[] q)
    // q = [col, op, val] * qlen with op 0: <, 1: ==, 2: >.
    auto& m = cb.method(
        "query",
        Signature{{TypeKind::kRef, TypeKind::kRef, TypeKind::kRef,
                   TypeKind::kRef},
                  TypeKind::kRef});
    m.param_name(0, "a").param_name(1, "b").param_name(2, "c")
        .param_name(3, "q");
    m.potential(jvm::SizeParamSpec{{{0, true}, {3, true}}});  // n * 3*qlen

    m.aload("a").arraylength().istore("n");
    m.aload("q").arraylength().iconst(3).idiv().istore("qlen");
    m.iconst(3).newarray(TypeKind::kInt).astore("res");
    m.iconst(0).istore("count");
    m.iconst(0).istore("sum");
    m.iconst(1).iconst(30).ishl().istore("minb");

    auto rows = m.new_label(), rows_done = m.new_label();
    auto preds = m.new_label(), preds_done = m.new_label();
    auto fail = m.new_label(), next_row = m.new_label();
    auto op_lt = m.new_label(), op_eq = m.new_label(), pred_ok = m.new_label();
    auto upd_min = m.new_label(), no_min = m.new_label();

    m.iconst(0).istore("row");
    m.bind(rows);
    m.iload("row").iload("n").if_icmpge(rows_done);

    m.iconst(0).istore("p");
    m.bind(preds);
    m.iload("p").iload("qlen").if_icmpge(preds_done);
    // v = getcol(a,b,c, q[3p], row); op = q[3p+1]; val = q[3p+2]
    m.iload("p").iconst(3).imul().istore("base");
    m.aload("a").aload("b").aload("c")
        .aload("q").iload("base").iaload()
        .iload("row")
        .invokestatic("Db", "getcol")
        .istore("v");
    m.aload("q").iload("base").iconst(1).iadd().iaload().istore("op");
    m.aload("q").iload("base").iconst(2).iadd().iaload().istore("val");
    m.iload("op").ifeq(op_lt);
    m.iload("op").iconst(1).if_icmpeq(op_eq);
    // op 2: v > val
    m.iload("v").iload("val").if_icmpgt(pred_ok);
    m.goto_(fail);
    m.bind(op_lt);
    m.iload("v").iload("val").if_icmplt(pred_ok);
    m.goto_(fail);
    m.bind(op_eq);
    m.iload("v").iload("val").if_icmpeq(pred_ok);
    m.goto_(fail);
    m.bind(pred_ok);
    m.iload("p").iconst(1).iadd().istore("p");
    m.goto_(preds);
    m.bind(preds_done);

    // Row matched: count++, sum += a[row], minb = min(minb, b[row])
    m.iload("count").iconst(1).iadd().istore("count");
    m.iload("sum").aload("a").iload("row").iaload().iadd().istore("sum");
    m.aload("b").iload("row").iaload().iload("minb").if_icmpge(no_min);
    m.goto_(upd_min);
    m.bind(upd_min);
    m.aload("b").iload("row").iaload().istore("minb");
    m.bind(no_min);
    m.goto_(next_row);
    m.bind(fail);
    m.bind(next_row);
    m.iload("row").iconst(1).iadd().istore("row");
    m.goto_(rows);
    m.bind(rows_done);

    m.aload("res").iconst(0).iload("count").iastore();
    m.aload("res").iconst(1).iload("sum").iastore();
    m.aload("res").iconst(2).iload("minb").iastore();
    m.aload("res").aret();
  }
  return cb.build();
}

std::vector<std::int32_t> golden(const std::vector<std::int32_t>& a,
                                 const std::vector<std::int32_t>& b,
                                 const std::vector<std::int32_t>& c,
                                 const std::vector<std::int32_t>& q) {
  const auto n = static_cast<std::int32_t>(a.size());
  const auto qlen = static_cast<std::int32_t>(q.size()) / 3;
  std::int32_t count = 0, sum = 0, minb = 1 << 30;
  for (std::int32_t row = 0; row < n; ++row) {
    bool ok = true;
    for (std::int32_t p = 0; p < qlen && ok; ++p) {
      const std::int32_t col = q[p * 3];
      const std::int32_t v = col == 1 ? b[row] : (col == 2 ? c[row] : a[row]);
      const std::int32_t op = q[p * 3 + 1];
      const std::int32_t val = q[p * 3 + 2];
      ok = op == 0 ? v < val : (op == 1 ? v == val : v > val);
    }
    if (!ok) continue;
    ++count;
    sum += a[row];
    if (b[row] < minb) minb = b[row];
  }
  return {count, sum, minb};
}

}  // namespace

App make_db() {
  App a;
  a.name = "db";
  a.description =
      "Database miniature (conjunctive predicate scan, SpecJVM98 db with the "
      "s1 dataset)";
  a.cls = "Db";
  a.method = "query";
  a.classes = {build_class()};
  a.make_args = [](jvm::Jvm& vm, double scale, Rng& rng) {
    const auto n = static_cast<std::int32_t>(scale);
    const std::int32_t qlen = 3;
    std::vector<std::int32_t> ca(n), cb(n), cc(n);
    for (std::int32_t i = 0; i < n; ++i) {
      ca[i] = static_cast<std::int32_t>(rng.uniform_int(0, 1000));
      cb[i] = static_cast<std::int32_t>(rng.uniform_int(0, 1000));
      cc[i] = static_cast<std::int32_t>(rng.uniform_int(0, 1000));
    }
    // Query with mixed selectivity so later predicates actually execute.
    std::vector<std::int32_t> q;
    for (std::int32_t p = 0; p < qlen; ++p) {
      q.push_back(static_cast<std::int32_t>(rng.uniform_int(0, 2)));  // col
      q.push_back(static_cast<std::int32_t>(rng.uniform_int(0, 2)) == 1
                      ? 2
                      : 0);  // op: < or >
      q.push_back(static_cast<std::int32_t>(rng.uniform_int(420, 580)));
    }
    auto push = [&](const std::vector<std::int32_t>& v) {
      const mem::Addr arr = vm.new_array(
          TypeKind::kInt, static_cast<std::int32_t>(v.size()), false);
      vm.write_i32_array(arr, v);
      return Value::make_ref(arr);
    };
    return std::vector<Value>{push(ca), push(cb), push(cc), push(q)};
  };
  a.check = [](const jvm::Jvm& avm, std::span<const Value> args,
               const jvm::Jvm& rvm, Value result) {
    const auto ca = avm.read_i32_array(args[0].as_ref());
    const auto cb = avm.read_i32_array(args[1].as_ref());
    const auto cc = avm.read_i32_array(args[2].as_ref());
    const auto q = avm.read_i32_array(args[3].as_ref());
    return rvm.read_i32_array(result.as_ref()) == golden(ca, cb, cc, q);
  };
  a.profile_scales = {256, 512, 1024, 1536, 2048};
  a.small_scale = 256;
  a.large_scale = 8192;
  return a;
}

}  // namespace javelin::apps
