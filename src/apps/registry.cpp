#include "apps/app.hpp"

namespace javelin::apps {

const std::vector<App>& registry() {
  static const std::vector<App> apps = [] {
    std::vector<App> v;
    v.push_back(make_fe());
    v.push_back(make_pf());
    v.push_back(make_mf());
    v.push_back(make_hpf());
    v.push_back(make_ed());
    v.push_back(make_sort());
    v.push_back(make_jess());
    v.push_back(make_db());
    return v;
  }();
  return apps;
}

const App& app(const std::string& name) {
  for (const App& a : registry())
    if (a.name == name) return a;
  throw Error("apps: unknown benchmark '" + name + "'");
}

}  // namespace javelin::apps
