// Median-Filter: given an image (PGM-style byte matrix) and a window size,
// produces the median-filtered image (clamped borders, insertion sort per
// window). Size parameter: image area (paper: "image size and filter window
// size"; the scenarios use a 5x5 window, whose per-pixel sorting cost is what
// makes median filtering offload-friendly).

#include "apps/app.hpp"
#include "jvm/builder.hpp"

namespace javelin::apps {

namespace {

using jvm::Signature;
using jvm::TypeKind;
using jvm::Value;

jvm::ClassFile build_class() {
  jvm::ClassBuilder cb("MF");

  // static byte[] median(byte[] img, int w, int h, int win)
  auto& m = cb.method(
      "median",
      Signature{{TypeKind::kRef, TypeKind::kInt, TypeKind::kInt, TypeKind::kInt},
                TypeKind::kRef});
  m.param_name(0, "img").param_name(1, "w").param_name(2, "h")
      .param_name(3, "win");
  m.potential(jvm::SizeParamSpec{{{1, false}, {2, false}}});  // s = w*h

  m.iload("w").iload("h").imul().newarray(TypeKind::kByte).astore("out");
  m.iload("win").iload("win").imul().newarray(TypeKind::kInt).astore("buf");
  m.iload("win").iconst(2).idiv().istore("half");

  auto yloop = m.new_label(), ydone = m.new_label();
  auto xloop = m.new_label(), xdone = m.new_label();
  auto dyloop = m.new_label(), dydone = m.new_label();
  auto dxloop = m.new_label(), dxdone = m.new_label();
  auto sloop = m.new_label(), sdone = m.new_label();
  auto inner = m.new_label(), inner_done = m.new_label();

  m.iconst(0).istore("y");
  m.bind(yloop);
  m.iload("y").iload("h").if_icmpge(ydone);
  m.iconst(0).istore("x");
  m.bind(xloop);
  m.iload("x").iload("w").if_icmpge(xdone);

  // gather window into buf
  m.iconst(0).istore("cnt");
  m.iload("half").ineg().istore("dy");
  m.bind(dyloop);
  m.iload("dy").iload("half").if_icmpgt(dydone);
  m.iload("half").ineg().istore("dx");
  m.bind(dxloop);
  m.iload("dx").iload("half").if_icmpgt(dxdone);
  // yy = clamp(y + dy, 0, h-1); xx = clamp(x + dx, 0, w-1)
  m.iconst(0).iload("h").iconst(1).isub()
      .iload("y").iload("dy").iadd()
      .intrinsic(isa::Intrinsic::kImin)
      .intrinsic(isa::Intrinsic::kImax)
      .istore("yy");
  m.iconst(0).iload("w").iconst(1).isub()
      .iload("x").iload("dx").iadd()
      .intrinsic(isa::Intrinsic::kImin)
      .intrinsic(isa::Intrinsic::kImax)
      .istore("xx");
  m.aload("buf").iload("cnt")
      .aload("img").iload("yy").iload("w").imul().iload("xx").iadd().baload()
      .iastore();
  m.iload("cnt").iconst(1).iadd().istore("cnt");
  m.iload("dx").iconst(1).iadd().istore("dx");
  m.goto_(dxloop);
  m.bind(dxdone);
  m.iload("dy").iconst(1).iadd().istore("dy");
  m.goto_(dyloop);
  m.bind(dydone);

  // insertion sort buf[0..cnt)
  m.iconst(1).istore("i");
  m.bind(sloop);
  m.iload("i").iload("cnt").if_icmpge(sdone);
  m.aload("buf").iload("i").iaload().istore("v");
  m.iload("i").iconst(1).isub().istore("j");
  m.bind(inner);
  m.iload("j").iflt(inner_done);
  m.aload("buf").iload("j").iaload().iload("v").if_icmple(inner_done);
  m.aload("buf").iload("j").iconst(1).iadd()
      .aload("buf").iload("j").iaload().iastore();
  m.iload("j").iconst(1).isub().istore("j");
  m.goto_(inner);
  m.bind(inner_done);
  m.aload("buf").iload("j").iconst(1).iadd().iload("v").iastore();
  m.iload("i").iconst(1).iadd().istore("i");
  m.goto_(sloop);
  m.bind(sdone);

  // out[y*w+x] = buf[cnt/2]
  m.aload("out").iload("y").iload("w").imul().iload("x").iadd()
      .aload("buf").iload("cnt").iconst(2).idiv().iaload()
      .bastore();

  m.iload("x").iconst(1).iadd().istore("x");
  m.goto_(xloop);
  m.bind(xdone);
  m.iload("y").iconst(1).iadd().istore("y");
  m.goto_(yloop);
  m.bind(ydone);
  m.aload("out").aret();

  return cb.build();
}

std::vector<std::uint8_t> golden(const std::vector<std::uint8_t>& img,
                                 std::int32_t w, std::int32_t h,
                                 std::int32_t win) {
  std::vector<std::uint8_t> out(static_cast<std::size_t>(w) * h, 0);
  std::vector<std::int32_t> buf(static_cast<std::size_t>(win) * win);
  const std::int32_t half = win / 2;
  for (std::int32_t y = 0; y < h; ++y) {
    for (std::int32_t x = 0; x < w; ++x) {
      std::int32_t cnt = 0;
      for (std::int32_t dy = -half; dy <= half; ++dy) {
        for (std::int32_t dx = -half; dx <= half; ++dx) {
          const std::int32_t yy = std::max(0, std::min(h - 1, y + dy));
          const std::int32_t xx = std::max(0, std::min(w - 1, x + dx));
          buf[cnt++] = img[static_cast<std::size_t>(yy) * w + xx];
        }
      }
      for (std::int32_t i = 1; i < cnt; ++i) {
        const std::int32_t v = buf[i];
        std::int32_t j = i - 1;
        while (j >= 0 && buf[j] > v) {
          buf[j + 1] = buf[j];
          --j;
        }
        buf[j + 1] = v;
      }
      out[static_cast<std::size_t>(y) * w + x] =
          static_cast<std::uint8_t>(buf[cnt / 2]);
    }
  }
  return out;
}

std::vector<std::uint8_t> random_image(std::int32_t w, std::int32_t h,
                                       Rng& rng) {
  std::vector<std::uint8_t> img(static_cast<std::size_t>(w) * h);
  // Smooth-ish gradient plus noise (resembles natural PGM content).
  for (std::int32_t y = 0; y < h; ++y)
    for (std::int32_t x = 0; x < w; ++x)
      img[static_cast<std::size_t>(y) * w + x] = static_cast<std::uint8_t>(
          (x * 3 + y * 2 + static_cast<std::int32_t>(rng.uniform_int(0, 60))) &
          0xff);
  return img;
}

}  // namespace

App make_mf() {
  App a;
  a.name = "mf";
  a.description =
      "Given an image (PGM) and a window size, generates a new image by "
      "median filtering";
  a.cls = "MF";
  a.method = "median";
  a.classes = {build_class()};
  a.make_args = [](jvm::Jvm& vm, double scale, Rng& rng) {
    const auto side = static_cast<std::int32_t>(scale);
    auto img = random_image(side, side, rng);
    const mem::Addr arr = vm.new_array(TypeKind::kByte,
                                       static_cast<std::int32_t>(img.size()),
                                       /*charge=*/false);
    vm.write_u8_array(arr, img);
    return std::vector<Value>{Value::make_ref(arr), Value::make_int(side),
                              Value::make_int(side), Value::make_int(5)};
  };
  a.check = [](const jvm::Jvm& avm, std::span<const Value> args,
               const jvm::Jvm& rvm, Value result) {
    const auto img = avm.read_u8_array(args[0].as_ref());
    const auto expected = golden(img, args[1].as_int(), args[2].as_int(),
                                 args[3].as_int());
    return rvm.read_u8_array(result.as_ref()) == expected;
  };
  a.profile_scales = {6, 10, 14, 20, 28};
  a.small_scale = 10;
  a.large_scale = 48;
  return a;
}

}  // namespace javelin::apps
