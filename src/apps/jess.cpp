// jess: a miniature of the SpecJVM98 expert-system shell — a forward-chaining
// rule engine run to fixpoint. Facts are a byte vector; each rule is a triple
// (antecedent1, antecedent2, consequent). The engine sweeps the rule list
// until no new fact is derived (the core match-fire loop of a Rete-less
// shell, which dominates jess's s1 run).
// Size parameter: number of rules (the paper's Fig 3 size knob).

#include "apps/app.hpp"
#include "jvm/builder.hpp"

namespace javelin::apps {

namespace {

using jvm::Signature;
using jvm::TypeKind;
using jvm::Value;

jvm::ClassFile build_class() {
  jvm::ClassBuilder cb("Jess");

  // static byte[] infer(byte[] facts, int[] rules, int nrules)
  auto& m = cb.method(
      "infer",
      Signature{{TypeKind::kRef, TypeKind::kRef, TypeKind::kInt},
                TypeKind::kRef});
  m.param_name(0, "facts").param_name(1, "rules").param_name(2, "nrules");
  m.potential(jvm::SizeParamSpec{{{2, false}}});

  // Work on a copy of the fact base (offload-functional API).
  auto copy = m.new_label(), copy_done = m.new_label();
  m.aload("facts").arraylength().istore("nf");
  m.iload("nf").newarray(TypeKind::kByte).astore("kb");
  m.iconst(0).istore("i");
  m.bind(copy);
  m.iload("i").iload("nf").if_icmpge(copy_done);
  m.aload("kb").iload("i").aload("facts").iload("i").baload().bastore();
  m.iload("i").iconst(1).iadd().istore("i");
  m.goto_(copy);
  m.bind(copy_done);

  auto pass = m.new_label(), done = m.new_label();
  auto rloop = m.new_label(), rdone = m.new_label(), rskip = m.new_label();
  m.bind(pass);
  m.iconst(0).istore("changed");
  m.iconst(0).istore("r");
  m.bind(rloop);
  m.iload("r").iload("nrules").if_icmpge(rdone);
  // base = r*3
  m.iload("r").iconst(3).imul().istore("base");
  // if (!kb[rules[base]]) skip
  m.aload("kb").aload("rules").iload("base").iaload().baload().ifeq(rskip);
  // if (!kb[rules[base+1]]) skip
  m.aload("kb").aload("rules").iload("base").iconst(1).iadd().iaload()
      .baload().ifeq(rskip);
  // if (kb[rules[base+2]]) skip  (already derived)
  m.aload("kb").aload("rules").iload("base").iconst(2).iadd().iaload()
      .baload().ifne(rskip);
  // derive: kb[rules[base+2]] = 1; changed = 1
  m.aload("kb").aload("rules").iload("base").iconst(2).iadd().iaload()
      .iconst(1).bastore();
  m.iconst(1).istore("changed");
  m.bind(rskip);
  m.iload("r").iconst(1).iadd().istore("r");
  m.goto_(rloop);
  m.bind(rdone);
  m.iload("changed").ifne(pass);
  m.goto_(done);
  m.bind(done);
  m.aload("kb").aret();

  return cb.build();
}

std::vector<std::uint8_t> golden(const std::vector<std::uint8_t>& facts,
                                 const std::vector<std::int32_t>& rules,
                                 std::int32_t nrules) {
  std::vector<std::uint8_t> kb = facts;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::int32_t r = 0; r < nrules; ++r) {
      const std::int32_t base = r * 3;
      if (kb[rules[base]] && kb[rules[base + 1]] && !kb[rules[base + 2]]) {
        kb[rules[base + 2]] = 1;
        changed = true;
      }
    }
  }
  return kb;
}

}  // namespace

App make_jess() {
  App a;
  a.name = "jess";
  a.description =
      "Expert-system shell miniature (forward-chaining rule engine, "
      "SpecJVM98 jess with the s1 dataset)";
  a.cls = "Jess";
  a.method = "infer";
  a.classes = {build_class()};
  a.make_args = [](jvm::Jvm& vm, double scale, Rng& rng) {
    const auto nrules = static_cast<std::int32_t>(scale);
    const std::int32_t nfacts = nrules + 8;
    std::vector<std::uint8_t> facts(static_cast<std::size_t>(nfacts), 0);
    for (int i = 0; i < 8; ++i) facts[i] = 1;  // axioms
    // Chained rules: each rule derives a new fact from an axiom and a fact
    // derived by an earlier rule, forcing multiple fixpoint passes; a
    // fraction of rules is shuffled "backwards" to make later passes derive
    // more.
    std::vector<std::int32_t> rules(static_cast<std::size_t>(nrules) * 3);
    for (std::int32_t r = 0; r < nrules; ++r) {
      const std::int32_t derived = 8 + r;
      const std::int32_t prev =
          r == 0 ? static_cast<std::int32_t>(rng.uniform_int(0, 7))
                 : 8 + static_cast<std::int32_t>(rng.uniform_int(0, r - 1));
      rules[r * 3] = static_cast<std::int32_t>(rng.uniform_int(0, 7));
      rules[r * 3 + 1] = prev;
      rules[r * 3 + 2] = derived;
    }
    // Reverse a random third of the list so chains span passes.
    for (std::int32_t r = 0; r < nrules / 3; ++r) {
      const auto i = static_cast<std::size_t>(rng.uniform_int(0, nrules - 1));
      const auto j = static_cast<std::size_t>(rng.uniform_int(0, nrules - 1));
      for (int k = 0; k < 3; ++k) std::swap(rules[i * 3 + k], rules[j * 3 + k]);
    }
    const mem::Addr farr = vm.new_array(TypeKind::kByte, nfacts, false);
    vm.write_u8_array(farr, facts);
    const mem::Addr rarr = vm.new_array(
        TypeKind::kInt, static_cast<std::int32_t>(rules.size()), false);
    vm.write_i32_array(rarr, rules);
    return std::vector<Value>{Value::make_ref(farr), Value::make_ref(rarr),
                              Value::make_int(nrules)};
  };
  a.check = [](const jvm::Jvm& avm, std::span<const Value> args,
               const jvm::Jvm& rvm, Value result) {
    const auto facts = avm.read_u8_array(args[0].as_ref());
    const auto rules = avm.read_i32_array(args[1].as_ref());
    const auto expected = golden(facts, rules, args[2].as_int());
    return rvm.read_u8_array(result.as_ref()) == expected;
  };
  a.profile_scales = {128, 256, 512, 768, 1024};
  a.small_scale = 128;
  a.large_scale = 4096;
  return a;
}

}  // namespace javelin::apps
