#include "energy/energy.hpp"

#include <sstream>

namespace javelin::energy {

const char* instr_class_name(InstrClass c) {
  switch (c) {
    case InstrClass::kLoad: return "load";
    case InstrClass::kStore: return "store";
    case InstrClass::kBranch: return "branch";
    case InstrClass::kAluSimple: return "alu";
    case InstrClass::kAluComplex: return "alu_complex";
    case InstrClass::kNop: return "nop";
    case InstrClass::kCount: break;
  }
  return "?";
}

const char* subsystem_name(Subsystem s) {
  switch (s) {
    case Subsystem::kCore: return "core";
    case Subsystem::kDram: return "dram";
    case Subsystem::kCommTx: return "comm_tx";
    case Subsystem::kCommRx: return "comm_rx";
    case Subsystem::kIdle: return "idle";
    case Subsystem::kCount: break;
  }
  return "?";
}

EnergyMeter EnergyMeter::since(const EnergyMeter& earlier) const {
  EnergyMeter d;
  for (std::size_t i = 0; i < kNumSubsystems; ++i)
    d.by_subsystem_[i] = by_subsystem_[i] - earlier.by_subsystem_[i];
  for (std::size_t i = 0; i < kNumInstrClasses; ++i)
    d.counts_.by_class[i] = counts_.by_class[i] - earlier.counts_.by_class[i];
  d.dram_accesses_ = dram_accesses_ - earlier.dram_accesses_;
  return d;
}

std::string EnergyMeter::summary() const {
  std::ostringstream os;
  os << "total=" << total() * 1e3 << " mJ (";
  for (std::size_t i = 0; i < kNumSubsystems; ++i) {
    if (i) os << ", ";
    os << subsystem_name(static_cast<Subsystem>(i)) << "="
       << by_subsystem_[i] * 1e3 << " mJ";
  }
  os << "), instrs=" << counts_.total() << ", dram=" << dram_accesses_;
  return os.str();
}

}  // namespace javelin::energy
