// Instruction-class energy model and energy accounting.
//
// Implements the paper's Fig 1: per-instruction energies of a five-stage
// microSPARC-IIep-like pipeline obtained from SimplePower, plus the per-access
// DRAM energy from data sheets. The executor and interpreter report executed
// instructions by class; the meter converts counts to joules and keeps a
// breakdown by subsystem so benches can report computation vs. communication
// vs. idle energy separately.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "support/units.hpp"

namespace javelin::energy {

/// Classes of native instructions distinguished by the energy model (Fig 1).
enum class InstrClass : std::uint8_t {
  kLoad = 0,
  kStore,
  kBranch,
  kAluSimple,
  kAluComplex,
  kNop,
  kCount  // sentinel
};

constexpr std::size_t kNumInstrClasses =
    static_cast<std::size_t>(InstrClass::kCount);

const char* instr_class_name(InstrClass c);

/// Per-instruction energies in joules (paper Fig 1), plus main-memory access
/// energy. Defaults reproduce the paper's table exactly.
struct InstructionEnergyTable {
  std::array<double, kNumInstrClasses> instr{
      nJ(4.814),  // Load
      nJ(4.479),  // Store
      nJ(2.868),  // Branch
      nJ(2.846),  // ALU (simple)
      nJ(3.726),  // ALU (complex)
      nJ(2.644),  // Nop
  };
  double main_memory = nJ(4.94);  ///< Per DRAM access.

  double of(InstrClass c) const {
    return instr[static_cast<std::size_t>(c)];
  }
};

/// Counts of executed instructions by class.
struct InstrCounts {
  std::array<std::uint64_t, kNumInstrClasses> by_class{};

  void add(InstrClass c, std::uint64_t n = 1) {
    by_class[static_cast<std::size_t>(c)] += n;
  }
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto v : by_class) t += v;
    return t;
  }
  std::uint64_t of(InstrClass c) const {
    return by_class[static_cast<std::size_t>(c)];
  }
  InstrCounts& operator+=(const InstrCounts& o) {
    for (std::size_t i = 0; i < kNumInstrClasses; ++i)
      by_class[i] += o.by_class[i];
    return *this;
  }
  /// Energy of these counts under a table (core datapath only).
  double energy(const InstructionEnergyTable& t) const {
    double e = 0.0;
    for (std::size_t i = 0; i < kNumInstrClasses; ++i)
      e += static_cast<double>(by_class[i]) * t.instr[i];
    return e;
  }
};

/// Subsystems tracked separately in the client energy breakdown.
enum class Subsystem : std::uint8_t {
  kCore = 0,    ///< Processor datapath (instruction energies).
  kDram,        ///< Off-chip main-memory accesses.
  kCommTx,      ///< Radio transmit chain.
  kCommRx,      ///< Radio receive chain.
  kIdle,        ///< Leakage while powered down / waiting.
  kCount
};

constexpr std::size_t kNumSubsystems = static_cast<std::size_t>(Subsystem::kCount);

const char* subsystem_name(Subsystem s);

/// Accumulates joules by subsystem plus instruction counts by class.
///
/// One meter per simulated device; `snapshot()`/difference support scoping a
/// measurement to a single method execution.
///
/// Meter lines and the client/server split. Every Device owns exactly one
/// meter, and lines are never mixed: the client's meter is what the paper's
/// figures report (battery energy), while the server's meters feed the
/// *total-system* accounting surfaced as `server_j` (rt::Server::energy_j,
/// obs::EnergyLedger::server_j, sim::StrategyResult::server_j). Server
/// charging rules: remote execution charges the server machine's meter at
/// its own table (deserialize + invoke + serialize); remote compilation
/// charges the server's client-ABI twin under the client's table with the
/// same add_instrs + dram-per-50-instructions rule the client uses for
/// local compiles, so the two are directly comparable; memoized compile
/// responses charge nothing. Deltas of one line are only ever taken against
/// snapshots of that same line — `since()` across lines is meaningless.
class EnergyMeter {
 public:
  void add(Subsystem s, double joules) {
    by_subsystem_[static_cast<std::size_t>(s)] += joules;
  }
  void add_instrs(const InstrCounts& c, const InstructionEnergyTable& t) {
    counts_ += c;
    add(Subsystem::kCore, c.energy(t));
  }
  void add_instr(InstrClass c, const InstructionEnergyTable& t) {
    counts_.add(c);
    add(Subsystem::kCore, t.of(c));
  }
  void add_dram_accesses(std::uint64_t n, const InstructionEnergyTable& t) {
    dram_accesses_ += n;
    add(Subsystem::kDram, static_cast<double>(n) * t.main_memory);
  }

  double of(Subsystem s) const {
    return by_subsystem_[static_cast<std::size_t>(s)];
  }
  double total() const {
    double e = 0.0;
    for (double v : by_subsystem_) e += v;
    return e;
  }
  /// Core + DRAM (the "computation" energy in the paper's terminology).
  double computation() const { return of(Subsystem::kCore) + of(Subsystem::kDram); }
  /// Tx + Rx.
  double communication() const {
    return of(Subsystem::kCommTx) + of(Subsystem::kCommRx);
  }

  const InstrCounts& counts() const { return counts_; }
  std::uint64_t dram_accesses() const { return dram_accesses_; }

  // Register-caching support for the execution hot loops.
  //
  // The executor and interpreter add one core-datapath energy term per
  // simulated instruction; routing each through add_instr() costs a
  // load+store of the accumulator per instruction. A hot loop may instead
  // borrow these references, keep the running core sum in a register, and
  // write it back before anything else can observe the meter (bridge
  // escapes, exceptions, loop exit). Every addition still lands on the same
  // running sum in the same order, so the result — including the rounding —
  // is bit-identical to unbatched add_instr() calls.
  double& core_joules_ref() {
    return by_subsystem_[static_cast<std::size_t>(Subsystem::kCore)];
  }
  InstrCounts& counts_mut() { return counts_; }

  /// A copyable snapshot; `EnergyMeter::since` computes deltas.
  EnergyMeter snapshot() const { return *this; }
  /// Difference `*this - earlier` (both must come from the same meter line).
  EnergyMeter since(const EnergyMeter& earlier) const;

  void reset() { *this = EnergyMeter{}; }

  std::string summary() const;

 private:
  std::array<double, kNumSubsystems> by_subsystem_{};
  InstrCounts counts_{};
  std::uint64_t dram_accesses_ = 0;
};

}  // namespace javelin::energy
