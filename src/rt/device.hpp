// A simulated device: one machine configuration with its memory system,
// energy meter, core, JVM and execution engine wired together.
#pragma once

#include <memory>
#include <vector>

#include "jvm/classfile.hpp"
#include "jvm/engine.hpp"
#include "mem/shadow.hpp"

namespace javelin::rt {

struct Device {
  explicit Device(isa::MachineConfig machine)
      : cfg(std::move(machine)),
        arena(),
        meter(),
        hier(cfg.icache, cfg.dcache, cfg.miss_penalty_cycles, &cfg.energy,
             &meter),
        core{&cfg, &arena, &hier, &meter},
        vm(core),
        engine(vm) {
    if (mem::shadow_bounds_default()) enable_shadow_bounds();
  }

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Turn on shadow-bounds checking for this device's heap (mem/shadow.hpp).
  /// Idempotent; charges no simulated energy, so ledgers are unchanged.
  void enable_shadow_bounds() {
    if (!shadow_bounds) {
      shadow_bounds = std::make_unique<mem::ShadowBounds>();
      arena.set_shadow(shadow_bounds.get());
    }
  }

  /// Load and link an application (a set of class files, superclasses first).
  void deploy(const std::vector<jvm::ClassFile>& app) {
    for (const auto& cf : app) vm.load(cf);
    vm.link();
  }

  isa::MachineConfig cfg;
  mem::Arena arena;
  std::unique_ptr<mem::ShadowBounds> shadow_bounds;  ///< Non-null when enabled.
  energy::EnergyMeter meter;
  mem::MemoryHierarchy hier;
  isa::Core core;
  jvm::Jvm vm;
  jvm::ExecutionEngine engine;
};

}  // namespace javelin::rt
