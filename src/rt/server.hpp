// The resource-rich server (paper Section 2/3).
//
// Runs the same application on a 750 MHz SPARC workstation:
//  * remote method execution — deserializes the request's parameter objects
//    into its own heap, invokes the named method via reflection-style lookup,
//    and serializes the result back (Fig 4);
//  * remote compilation service — compiles methods for the client
//    architecture and ships pre-compiled native code (Section 3.3). To
//    target the client ABI, the server keeps a "client twin": a JVM built
//    over a separate arena with the identical class-load sequence, so static
//    and bytecode addresses match the client's layout (the paper's "limited
//    number of preferred client types");
//  * the mobile status table — records each client's request time and
//    estimated power-down interval so responses are queued until the client
//    wakes (Section 2).
//
// Server energy IS metered — but on the server's own meter lines, never the
// client's. The paper's figures report the client's battery only; the server
// meters exist for *total-system* accounting (obs::EnergyLedger::server_j,
// sim::StrategyResult::server_j), motivated by the cloud-offloading surveys
// in PAPERS.md: an offload that saves the handset can still cost the system.
// Charging rules are documented at `Server::energy_j()` below and in
// energy/energy.hpp. Server *time* additionally matters to the client,
// because it determines the client's power-down interval.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "jit/compiler.hpp"
#include "net/fault.hpp"
#include "net/protocol.hpp"
#include "rt/device.hpp"

namespace javelin::rt {

/// Row of the mobile status table.
struct MobileStatus {
  double request_time = 0.0;        ///< When the client sent the request.
  double estimated_wake = 0.0;      ///< When the client expects to wake.
  double response_ready = 0.0;      ///< When the server finished computing.
  bool response_queued = false;     ///< Queued because the client slept.
};

class Server {
 public:
  Server();

  /// Publish the application on the server (and on the client twin used for
  /// client-targeted compilation). Server-side code runs Level-3 native.
  void deploy(const std::vector<jvm::ClassFile>& app);

  struct ExecOutcome {
    net::InvokeResponse response;
    double compute_seconds = 0.0;  ///< Server-side execution time.
    /// The request arrived during an outage window: no response was (or ever
    /// will be) produced — the client sees only silence and times out.
    bool unavailable = false;
  };

  /// Handle a remote-invocation request arriving at `arrival_time`.
  ExecOutcome handle_invoke(const net::InvokeRequest& req, double arrival_time,
                            std::uint32_t client_id);

  /// Handle a remote-compilation request. Returns the compiled unit bundle
  /// (the method plus its compilation plan) targeted at the client ABI.
  net::CompileResponse handle_compile(const net::CompileRequest& req);

  const MobileStatus* status_of(std::uint32_t client_id) const;

  /// Artificial extra latency before the server starts computing (models a
  /// loaded server; used by ablation benches). Default 0.
  void set_queue_delay(double seconds) { queue_delay_ = seconds; }

  /// Install a fault schedule; only its (time-deterministic) outage windows
  /// apply to the server. Default: no outages.
  void set_fault_plan(const net::FaultPlan& plan) { fault_plan_ = plan; }
  /// Whether the server is unreachable at simulated time `t`.
  bool in_outage(double t) const { return fault_plan_.server_down(t); }

  /// Total wall-powered energy this server has burnt so far, in joules —
  /// the sum of its two meter lines (the server machine plus the client
  /// twin). Charging rules:
  ///  * remote execution (handle_invoke): deserialization, reflection-style
  ///    invocation and result serialization charge the server machine's
  ///    meter at its own instruction-energy table;
  ///  * remote compilation (handle_compile): the client-ABI compile work is
  ///    charged to the client twin's meter under the client's table — the
  ///    same add_instrs + dram/50 rule the client applies to local compiles
  ///    — so "what the server burnt compiling" is directly comparable to
  ///    "what the client would have burnt". Cache hits charge nothing.
  ///  * deploy-time work (class loading, the server's own L3 warm-up) is
  ///    charged at deploy; callers measure invocations as deltas of this
  ///    total, so it never leaks into per-invocation attribution.
  /// Reading this is free of side effects; the client reads deltas of it
  /// around each invocation to fill InvokeReport::server_j. It is never
  /// added to any client ledger's total_j.
  double energy_j() const {
    return dev_->meter.total() + client_twin_->meter.total();
  }

  Device& device() { return *dev_; }

 private:
  std::unique_ptr<Device> dev_;          ///< The server machine.
  std::unique_ptr<Device> client_twin_;  ///< Layout twin for client codegen.
  std::map<std::uint32_t, MobileStatus> status_;
  std::map<std::pair<std::string, int>, net::CompileResponse> compile_cache_;
  double queue_delay_ = 0.0;
  net::FaultPlan fault_plan_;  ///< Outage windows (disabled by default).
};

}  // namespace javelin::rt
