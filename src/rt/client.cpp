#include "rt/client.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "analysis/analyzer.hpp"
#include "analysis/lengths.hpp"
#include "net/serializer.hpp"

namespace javelin::rt {

const char* failure_class_name(FailureClass f) {
  switch (f) {
    case FailureClass::kNone: return "none";
    case FailureClass::kUplinkLoss: return "uplink-loss";
    case FailureClass::kDownlinkLoss: return "downlink-loss";
    case FailureClass::kOutage: return "outage";
    case FailureClass::kCorrupt: return "corrupt";
    case FailureClass::kTimeout: return "timeout";
  }
  return "?";
}

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kRemote: return "R";
    case Strategy::kInterpret: return "I";
    case Strategy::kLocal1: return "L1";
    case Strategy::kLocal2: return "L2";
    case Strategy::kLocal3: return "L3";
    case Strategy::kAdaptiveLocal: return "AL";
    case Strategy::kAdaptiveAdaptive: return "AA";
  }
  return "?";
}

const char* exec_mode_name(ExecMode m) {
  switch (m) {
    case ExecMode::kInterpret: return "interp";
    case ExecMode::kLocal1: return "L1";
    case ExecMode::kLocal2: return "L2";
    case ExecMode::kLocal3: return "L3";
    case ExecMode::kRemote: return "remote";
    case ExecMode::kBaseline: return "L0.5";
  }
  return "?";
}

const char* breaker_state_name(CircuitBreaker::State s) {
  switch (s) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "?";
}

void Client::trace_breaker(CircuitBreaker::State from,
                           CircuitBreaker::State to) {
  if (!trace_) return;
  obs::TraceEvent ev;
  ev.kind = obs::EventKind::kBreakerTransition;
  ev.t_s = now();
  ev.name = trace_->intern(breaker_state_name(to));
  ev.detail = trace_->intern(breaker_state_name(from));
  ev.a = static_cast<double>(breaker_.consecutive_failures);
  trace_->emit(ev);
}

void Client::trace_remote_attempt(const char* what, int attempt,
                                  std::int32_t mid) {
  if (!trace_) return;
  obs::TraceEvent ev;
  ev.kind = obs::EventKind::kRemoteAttempt;
  ev.t_s = now();
  ev.name = trace_->intern(what);
  ev.method_id = mid;
  ev.a = static_cast<double>(attempt);
  trace_->emit(ev);
}

void Client::trace_remote_failure(FailureClass fc, int attempt,
                                  std::int32_t mid,
                                  const energy::EnergyMeter& before) {
  if (!trace_) return;
  obs::TraceEvent ev;
  ev.kind = obs::EventKind::kRemoteFailure;
  ev.t_s = now();
  ev.detail = trace_->intern(failure_class_name(fc));
  ev.method_id = mid;
  ev.a = static_cast<double>(attempt);
  ev.ledger = obs::EnergyLedger::since(dev_->meter, before);  // Wasted energy.
  trace_->emit(ev);
}

void Client::trace_backoff(double seconds) {
  if (!trace_) return;
  obs::TraceEvent ev;
  ev.kind = obs::EventKind::kRetryBackoff;
  ev.t_s = now();
  ev.dur_s = seconds;
  trace_->emit(ev);
}

Client::Client(ClientConfig cfg, Server& server,
               radio::ChannelProcess& channel, net::Link& link)
    : cfg_(std::move(cfg)),
      server_(server),
      channel_(channel),
      pilot_(channel_, cfg_.pilot_period_s),
      link_(link),
      dev_(std::make_unique<Device>(cfg_.machine)) {}

void Client::deploy(const std::vector<jvm::ClassFile>& app) {
  dev_->deploy(app);
  stats_.assign(dev_->vm.num_methods(), MethodStats{});
  static_seed_k_.clear();
  static_remote_ok_.clear();
  if (cfg_.decision.static_seed) seed_from_analysis();
  length_facts_.clear();
  if (cfg_.decision.interprocedural_bce) seed_length_facts();
  range_inbounds_.clear();
  if (cfg_.decision.range_bce) seed_range_facts();
  wcec_bounds_.clear();
  wcec_known_.clear();
  wcec_.reset();
  if (cfg_.decision.wcec_seed) seed_wcec_bounds();
}

void Client::seed_from_analysis() {
  const jvm::Jvm& vm = dev_->vm;
  jvm::ClassSetResolver resolver;
  for (std::size_t c = 0; c < vm.num_classes(); ++c)
    resolver.add(&vm.cls(static_cast<std::int32_t>(c)).cf);
  analysis::Analyzer analyzer(resolver);
  analyzer.set_trace(trace_);
  static_seed_k_.assign(vm.num_methods(), 0.0);
  static_remote_ok_.assign(vm.num_methods(), 1);
  for (std::size_t i = 0; i < vm.num_methods(); ++i) {
    const jvm::RtMethod& m = vm.method(static_cast<std::int32_t>(i));
    const analysis::MethodAnalysis r =
        analyzer.analyze_method(vm.cls(m.class_id).cf, *m.info);
    if (r.cost.max_loop_depth >= 1)
      static_seed_k_[i] = cfg_.decision.seed_invocations;
    bool ok = r.safety.offloadable();
    if (ok && cfg_.decision.max_request_bytes > 0)
      ok = r.safety.request_bytes_bound >= 0 &&
           r.safety.request_bytes_bound <= cfg_.decision.max_request_bytes;
    static_remote_ok_[i] = ok ? 1 : 0;
  }
}

void Client::seed_length_facts() {
  const jvm::Jvm& vm = dev_->vm;
  std::vector<const jvm::ClassFile*> classes;
  for (std::size_t c = 0; c < vm.num_classes(); ++c)
    classes.push_back(&vm.cls(static_cast<std::int32_t>(c)).cf);
  const analysis::LengthAnalysis la = analysis::analyze_lengths(classes);
  // An incomplete pass attaches no facts anywhere (fail closed).
  if (la.incomplete) return;
  length_facts_.assign(vm.num_methods(), {});
  for (std::size_t i = 0; i < vm.num_methods(); ++i) {
    const jvm::RtMethod& m = vm.method(static_cast<std::int32_t>(i));
    const analysis::MethodLengthFacts* f = la.find(m.info);
    if (f == nullptr || !f->valid()) continue;
    std::vector<jit::ArrayParamFact> facts(f->params.size());
    bool any = false;
    for (std::size_t p = 0; p < f->params.size(); ++p) {
      facts[p].non_null = f->params[p].non_null;
      facts[p].min_len = f->params[p].min_len;
      any = any || facts[p].non_null;
    }
    if (any) length_facts_[i] = std::move(facts);
  }
}

void Client::seed_range_facts() {
  const jvm::Jvm& vm = dev_->vm;
  std::vector<const jvm::ClassFile*> classes;
  for (std::size_t c = 0; c < vm.num_classes(); ++c)
    classes.push_back(&vm.cls(static_cast<std::int32_t>(c)).cf);
  jvm::ClassSetResolver resolver;
  for (const jvm::ClassFile* cf : classes) resolver.add(cf);
  // Entry states are refined by the interprocedural length facts when the
  // pass completes: "non-null, length >= N across every reaching call site"
  // becomes an ArgFact with array_len = [N, len_top]. An incomplete pass
  // contributes no facts (fail closed) — the intervals then prove only what
  // holds for arbitrary arguments (locally allocated arrays, constant
  // bounds), which is still sound for every caller.
  const analysis::LengthAnalysis la = analysis::analyze_lengths(classes);
  range_inbounds_.assign(vm.num_methods(), {});
  for (std::size_t i = 0; i < vm.num_methods(); ++i) {
    const jvm::RtMethod& m = vm.method(static_cast<std::int32_t>(i));
    std::vector<analysis::ArgFact> facts;
    if (const analysis::MethodLengthFacts* f =
            la.incomplete ? nullptr : la.find(m.info);
        f != nullptr && f->valid()) {
      facts.resize(f->params.size());
      for (std::size_t p = 0; p < f->params.size(); ++p) {
        if (!f->params[p].non_null) continue;
        facts[p].non_null = true;
        facts[p].is_array = true;
        facts[p].array_len = analysis::Interval{f->params[p].min_len,
                                                analysis::Interval::kI32Max};
      }
    }
    const analysis::MethodIntervals mi = analysis::analyze_intervals(
        vm.cls(m.class_id).cf, *m.info, &resolver, facts);
    if (!mi.converged) continue;  // Fail closed: no proofs from a truncated
                                  // or poisoned fixpoint.
    bool any = false;
    for (const char flag : mi.proven_inbounds) any = any || flag != 0;
    if (any)
      range_inbounds_[i].assign(mi.proven_inbounds.begin(),
                                mi.proven_inbounds.end());
  }
}

void Client::seed_wcec_bounds() {
  const jvm::Jvm& vm = dev_->vm;
  std::vector<const jvm::ClassFile*> classes;
  for (std::size_t c = 0; c < vm.num_classes(); ++c)
    classes.push_back(&vm.cls(static_cast<std::int32_t>(c)).cf);
  wcec_ = std::make_unique<analysis::WcecAnalysis>(std::move(classes),
                                                   dev_->cfg.energy);
  for (std::size_t i = 0; i < vm.num_methods(); ++i)
    wcec_->bind_method(static_cast<std::int32_t>(i),
                       vm.method(static_cast<std::int32_t>(i)).info);
  // Intervals are filled lazily: a method with no argument facts has an
  // unbounded trip count almost everywhere, so the useful interval needs the
  // exact facts of an actual invocation (see seed_wcec_bound).
  wcec_bounds_.assign(vm.num_methods(), {});
  wcec_known_.assign(vm.num_methods(), 0);
}

void Client::seed_wcec_bound(const jvm::RtMethod& m,
                             std::span<const jvm::Value> args) {
  const auto idx = static_cast<std::size_t>(m.id);
  wcec_known_[idx] = 1;
  // Exact per-argument facts, mirroring the containment oracle: int values
  // as singleton intervals, array refs with their exact length, plain
  // object refs just non-null (the header pad sentinel tells them apart).
  std::vector<analysis::ArgFact> facts(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    const jvm::Value& v = args[i];
    analysis::ArgFact& f = facts[i];
    switch (v.kind) {
      case jvm::TypeKind::kInt:
        f.value = analysis::Interval::constant(v.i);
        break;
      case jvm::TypeKind::kRef: {
        if (v.ref == mem::kNullAddr) break;
        f.non_null = true;
        std::uint8_t buf[4];
        dev_->arena.copy_out(v.ref + 4, buf, sizeof(buf));
        std::uint32_t word = 0;
        std::memcpy(&word, buf, sizeof(word));
        if (word != jvm::kObjPadSentinel) {
          f.is_array = true;
          f.array_len =
              analysis::Interval::constant(dev_->vm.array_length(v.ref));
        }
        break;
      }
      default:
        break;
    }
  }
  wcec_bounds_[idx] =
      wcec_->bounds(m.info, analysis::WcecAnalysis::kTierInterp, facts);
}

void Client::reset_session() {
  dev_->engine.clear_code();
  stats_.assign(dev_->vm.num_methods(), MethodStats{});
  breaker_ = CircuitBreaker{};
}

bool Client::breaker_allows_remote() {
  if (cfg_.resilience.breaker_threshold <= 0) return true;
  switch (breaker_.state) {
    case CircuitBreaker::State::kClosed:
    case CircuitBreaker::State::kHalfOpen:
      return true;
    case CircuitBreaker::State::kOpen:
      if (now() - breaker_.opened_at >= cfg_.resilience.breaker_cooldown_s) {
        breaker_.state = CircuitBreaker::State::kHalfOpen;
        ++breaker_.times_half_opened;
        trace_breaker(CircuitBreaker::State::kOpen,
                      CircuitBreaker::State::kHalfOpen);
        return true;  // The admitted exchange is the probe.
      }
      return false;
  }
  return true;
}

void Client::breaker_on_success() {
  breaker_.consecutive_failures = 0;
  if (breaker_.state != CircuitBreaker::State::kClosed) {
    const CircuitBreaker::State from = breaker_.state;
    breaker_.state = CircuitBreaker::State::kClosed;
    ++breaker_.times_reclosed;
    trace_breaker(from, CircuitBreaker::State::kClosed);
  }
}

void Client::breaker_on_failure() {
  ++breaker_.consecutive_failures;
  const ResiliencePolicy& rp = cfg_.resilience;
  if (rp.breaker_threshold <= 0) return;
  const bool probe_failed = breaker_.state == CircuitBreaker::State::kHalfOpen;
  const bool tripped =
      breaker_.state == CircuitBreaker::State::kClosed &&
      breaker_.consecutive_failures >= rp.breaker_threshold;
  if (probe_failed || tripped) {
    const CircuitBreaker::State from = breaker_.state;
    breaker_.state = CircuitBreaker::State::kOpen;
    breaker_.opened_at = now();
    ++breaker_.times_opened;
    trace_breaker(from, CircuitBreaker::State::kOpen);
  }
}

double Client::size_param(const jvm::Jvm& vm, const jvm::MethodInfo& mi,
                          std::span<const jvm::Value> args) {
  if (mi.size_param.factors.empty()) return 1.0;
  double s = 1.0;
  for (const auto& f : mi.size_param.factors) {
    if (f.arg_index >= args.size())
      throw Error("size_param: factor index out of range");
    const jvm::Value& v = args[f.arg_index];
    if (f.array_length) {
      s *= static_cast<double>(vm.array_length(v.as_ref()));
    } else {
      s *= static_cast<double>(v.as_int());
    }
  }
  return s;
}

void Client::charge_wait(double seconds, bool powered_down) {
  if (seconds <= 0) return;
  const double power = powered_down ? dev_->cfg.leakage_power_w()
                                    : dev_->cfg.normal_power_w;
  if (trace_) {
    obs::TraceEvent ev;
    ev.kind = powered_down ? obs::EventKind::kPowerDown
                           : obs::EventKind::kIdleAwake;
    ev.t_s = now();  // Span starts before the wait advances the clock.
    ev.dur_s = seconds;
    ev.ledger.idle_j = power * seconds;
    ev.ledger.total_j = ev.ledger.idle_j;
    trace_->emit(ev);
  }
  dev_->meter.add(energy::Subsystem::kIdle, power * seconds);
  extra_seconds_ += seconds;
}

double Client::remote_energy(const jvm::EnergyProfile& prof, double s,
                             double tx_power_w) const {
  const radio::CommModel& comm = link_.comm();
  const double req_bytes = std::max(0.0, prof.request_bytes.eval(s));
  const double resp_bytes = std::max(0.0, prof.response_bytes.eval(s));
  const double tx_s = req_bytes * kBitsPerByte / comm.bit_rate();
  const double rx_s = resp_bytes * kBitsPerByte / comm.bit_rate();
  const double server_s =
      std::max(0.0, prof.server_cycles.eval(s)) / cfg_.server_clock_hz;
  const double wait_power = cfg_.powerdown ? dev_->cfg.leakage_power_w()
                                           : dev_->cfg.normal_power_w;
  return tx_s * tx_power_w +
         rx_s * comm.powers().rx_power() +
         server_s * wait_power;
}

Client::Decision Client::decide(const jvm::RtMethod& m, MethodStats& st,
                                double s, radio::PowerClass channel_now,
                                bool adaptive_compilation) {
  const jvm::EnergyProfile& prof = m.info->profile;
  if (!prof.valid)
    throw Error("client: method " + m.qualified_name +
                " has no energy profile (was the app profiled at deploy?)");

  // EWMA updates (paper Section 3.2, u1 = u2 = 0.7).
  const double p_now = link_.comm().powers().tx_power(channel_now);
  if (st.k == 0) {
    st.ewma_s = s;
    st.ewma_p = p_now;
  } else {
    st.ewma_s = cfg_.u1 * st.ewma_s + (1.0 - cfg_.u1) * s;
    st.ewma_p = cfg_.u2 * st.ewma_p + (1.0 - cfg_.u2) * p_now;
  }
  ++st.k;
  // AL "optimistically assumes the method will be executed k more times".
  // The opt-in static seed (DecisionPolicy) raises the cold-start floor for
  // loop-containing methods; static_seed_k_ is empty when the knob is off,
  // so the default path never consults it.
  auto k = static_cast<double>(st.k);
  if (!static_seed_k_.empty())
    k = std::max(k, static_seed_k_[static_cast<std::size_t>(m.id)]);
  // WCEC amortization floor (DecisionPolicy::wcec_seed): a method whose
  // guaranteed worst-case interpreted energy over `seed_invocations` runs
  // exceeds its L1 compile energy is expensive enough that compilation *can*
  // amortize inside the seed window — raise the cold-start floor like
  // static_seed does. A worst-case-informed heuristic, not a guarantee:
  // that would need the best case (bcec_j) to clear the compile energy,
  // which vetoes nearly every method. Only the floor is heuristic; the
  // interval itself stays a proven bound.
  const analysis::EnergyInterval* wb =
      wcec_bounds_.empty() ? nullptr
                           : &wcec_bounds_[static_cast<std::size_t>(m.id)];
  if (wb != nullptr && wb->bounded() &&
      wb->wcec_j * cfg_.decision.seed_invocations >= prof.compile_energy[0])
    k = std::max(k, cfg_.decision.seed_invocations);

  // Expected energies for k further executions.
  const double EI = k * std::max(0.0, prof.local_energy[0].eval(st.ewma_s));
  const double ER = k * remote_energy(prof, st.ewma_s, st.ewma_p);

  const radio::CommModel& comm = link_.comm();
  const int current_level = dev_->engine.compiled_level(m.id);

  // An open circuit breaker blacklists the remote path (execution *and*
  // compilation): the decision degrades gracefully to the local modes until
  // the cooldown admits a half-open probe.
  const bool remote_ok = breaker_allows_remote();
  // The opt-in static offload-safety verdict additionally excludes remote
  // *execution* (not remote compilation — downloading native code serializes
  // no parameters) for methods the analysis proved unsafe to ship.
  bool remote_exec_ok =
      remote_ok &&
      (static_remote_ok_.empty() ||
       static_remote_ok_[static_cast<std::size_t>(m.id)] != 0);
  // Interval remote-veto (DecisionPolicy::wcec_seed): the finite WCEC is a
  // guaranteed per-run ceiling on local interpreted energy; while it
  // undercuts the per-run remote estimate, the curve-fitted remote
  // prediction cannot beat a bound that is certain, so kRemote is excluded
  // from the candidate set exactly like an open breaker.
  if (remote_exec_ok && wb != nullptr && wb->bounded() &&
      wb->wcec_j < remote_energy(prof, st.ewma_s, st.ewma_p))
    remote_exec_ok = false;

  // Candidate-cost vector for the kDecide trace event: EI, ER, EL1..EL3,
  // with excluded candidates (open breaker, unsafe offload) marked
  // kCostExcluded.
  std::array<double, obs::kNumDecideCosts> costs{};
  costs[0] = EI;
  costs[1] = remote_exec_ok ? ER : obs::kCostExcluded;

  double best = EI;
  Decision d{ExecMode::kInterpret, false};
  if (remote_exec_ok && ER < best) {
    best = ER;
    d = Decision{ExecMode::kRemote, false};
  }
  for (int level = 1; level <= 3; ++level) {
    double compile_cost = 0.0;
    bool remote_compile = false;
    if (current_level != level) {
      const double local_cost = prof.compile_energy[level - 1];
      compile_cost = local_cost;
      if (adaptive_compilation && remote_ok) {
        // AA: compare compiling locally against downloading pre-compiled
        // native code (request uplink + code image downlink).
        const double code_bytes = prof.code_size_bytes[level - 1];
        const double remote_cost =
            64.0 * kBitsPerByte / comm.bit_rate() * st.ewma_p +
            code_bytes * kBitsPerByte / comm.bit_rate() *
                comm.powers().rx_power();
        if (remote_cost < local_cost) {
          compile_cost = remote_cost;
          remote_compile = true;
        }
      }
    }
    const double EL =
        compile_cost + k * std::max(0.0, prof.local_energy[level].eval(st.ewma_s));
    costs[static_cast<std::size_t>(1 + level)] = EL;
    if (EL < best) {
      best = EL;
      d = Decision{static_cast<ExecMode>(level), remote_compile};
    }
  }
  // Opt-in L0.5 baseline tier: a one-off linear translation (~24x cheaper
  // than an L1 compile) plus discounted interpretation. Strict < keeps the
  // default-off decision sequence identical; the candidate is deliberately
  // NOT added to the kDecide costs vector, whose 5-entry layout (EI, ER,
  // EL1..EL3) is pinned by the trace-export format.
  if (cfg_.decision.baseline_tier) {
    double compile_cost = 0.0;
    if (!dev_->engine.baseline_installed(m.id))
      compile_cost =
          jit::compile_baseline(dev_->vm, m.id, dev_->cfg.energy).compile_energy;
    const double EL0 =
        compile_cost +
        k * std::max(0.0, prof.local_energy[0].eval(st.ewma_s)) *
            (1.0 - cfg_.decision.baseline_discount);
    if (EL0 < best) {
      best = EL0;
      d = Decision{ExecMode::kBaseline, false};
    }
  }
  if (trace_) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kDecide;
    ev.t_s = now();
    ev.name = trace_->intern(exec_mode_name(d.mode));
    if (d.remote_compile) ev.detail = trace_->intern("remote-compile");
    ev.method_id = m.id;
    ev.a = st.ewma_s;                    // Predicted size parameter.
    ev.b = static_cast<double>(st.k);    // Invocation count k.
    ev.costs = costs;
    trace_->emit(ev);
  }
  return d;
}

void Client::ensure_compiled(const jvm::RtMethod& m, int level, bool remote,
                             InvokeReport* report) {
  if (dev_->engine.compiled_level(m.id) == level) return;
  if (report) {
    report->compiled_this_call = true;
    report->remote_compile = remote;
  }

  if (remote) {
    // Download pre-compiled native code from the server (Section 3.3). The
    // class verifier cannot check native code; the server is trusted. The
    // exchange runs under the retry policy; on exhaustion (or an open
    // breaker) compilation degrades to local.
    const jvm::RtClass& rc = dev_->vm.cls(m.class_id);
    net::CompileRequest req{rc.cf.name, m.info->name, level};
    const ResiliencePolicy& rp = cfg_.resilience;
    ResilienceStats* rs = report ? &report->resilience : nullptr;
    net::FaultInjector* fi = link_.fault_injector();

    energy::EnergyMeter c0;  // Exchange-wide ledger base (tracing only).
    if (trace_) {
      c0 = dev_->meter.snapshot();
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kCompileBegin;
      ev.t_s = now();
      ev.name = trace_->intern(m.qualified_name);
      ev.detail = trace_->intern("remote");
      ev.method_id = m.id;
      ev.a = static_cast<double>(level);
      trace_->emit(ev);
    }

    for (int attempt = 1; breaker_allows_remote(); ++attempt) {
      if (rs) ++rs->attempts;
      const double e0 = dev_->meter.total();
      energy::EnergyMeter m0;
      if (trace_) m0 = dev_->meter.snapshot();
      trace_remote_attempt("compile", attempt, m.id);
      const radio::PowerClass pa = pilot_.estimate(now());
      const auto up = link_.client_send(req.wire_bytes(), pa, dev_->meter);
      extra_seconds_ += up.seconds;

      FailureClass fc = FailureClass::kNone;
      net::CompileResponse resp;
      if (up.lost) {
        fc = FailureClass::kUplinkLoss;
      } else if (server_.in_outage(now())) {
        fc = FailureClass::kOutage;
      } else {
        resp = server_.handle_compile(req);
        if (!resp.ok) {
          // The server cannot compile this method — a semantic refusal, not
          // a transient fault. Idle the legacy re-request window, then
          // compile locally.
          charge_wait(cfg_.response_timeout_s * 0.1, /*powered_down=*/false);
          break;
        }
        // Wait for the server to compile, then receive the image.
        charge_wait(resp.server_seconds, cfg_.powerdown);
        const auto down = link_.client_recv(resp.wire_bytes(), dev_->meter);
        extra_seconds_ += down.seconds;
        if (down.lost) {
          fc = FailureClass::kDownlinkLoss;
        } else if (fi) {
          // Hardened path: the image travels as a CRC32-sealed frame and may
          // arrive damaged; a corrupt frame is detected and retried.
          auto bytes = resp.encode();
          if (fi->corrupt_downlink()) fi->corrupt(bytes);
          try {
            resp = net::CompileResponse::decode(bytes);
          } catch (const FormatError&) {
            fc = FailureClass::kCorrupt;
          }
        }
      }

      if (fc == FailureClass::kNone) {
        breaker_on_success();
        // Link and install each unit (small per-unit linking cost).
        for (auto& unit : resp.units) {
          const std::int32_t id = dev_->vm.find_method(unit.cls, unit.method);
          if (id < 0) throw Error("client: downloaded code for unknown method");
          dev_->core.charge_class(energy::InstrClass::kAluSimple,
                                  unit.program.code.size() / 4 + 8);
          dev_->engine.install(id, std::move(unit.program), level);
        }
        if (trace_) {
          obs::TraceEvent ev;
          ev.kind = obs::EventKind::kCompileEnd;
          ev.t_s = now();
          ev.name = trace_->intern(m.qualified_name);
          ev.detail = trace_->intern("downloaded");
          ev.method_id = m.id;
          ev.a = static_cast<double>(level);
          ev.ledger = obs::EnergyLedger::since(dev_->meter, c0);
          trace_->emit(ev);
        }
        return;
      }

      // Nothing (usable) came back: idle the lost-exchange re-request window.
      if (fc != FailureClass::kDownlinkLoss && fc != FailureClass::kCorrupt)
        charge_wait(cfg_.response_timeout_s * 0.1, /*powered_down=*/false);
      if (rs) {
        const double wasted = dev_->meter.total() - e0;
        const auto ci = static_cast<std::size_t>(fc);
        ++rs->failures[ci];
        rs->wasted_j[ci] += wasted;
        rs->wasted_energy_j += wasted;
      }
      trace_remote_failure(fc, attempt, m.id, m0);
      breaker_on_failure();
      if (attempt >= rp.max_attempts ||
          breaker_.state == CircuitBreaker::State::kOpen)
        break;
      const double backoff =
          rp.backoff_base_s * std::pow(rp.backoff_multiplier, attempt - 1);
      trace_backoff(backoff);
      charge_wait(backoff, /*powered_down=*/false);
      if (rs) {
        rs->backoff_seconds += backoff;
        ++rs->retries;
      }
    }
    // Fall back to local compilation.
    ensure_compiled(m, level, /*remote=*/false, nullptr);
    if (trace_) {
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kCompileEnd;
      ev.t_s = now();
      ev.name = trace_->intern(m.qualified_name);
      ev.detail = trace_->intern("fallback-local");
      ev.method_id = m.id;
      ev.a = static_cast<double>(level);
      ev.ledger = obs::EnergyLedger::since(dev_->meter, c0);
      trace_->emit(ev);
    }
    return;
  }

  // Local compilation: the potential method plus its compilation plan
  // (Section 3: "the names of the potential method and the methods that will
  // be called by the potential method").
  std::vector<std::int32_t> plan{m.id};
  for (std::int32_t callee : jit::collect_callees(dev_->vm, m.id))
    plan.push_back(callee);
  for (std::int32_t id : plan) {
    if (dev_->engine.compiled_level(id) == level) continue;
    energy::EnergyMeter c0;
    if (trace_) {
      c0 = dev_->meter.snapshot();
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kCompileBegin;
      ev.t_s = now();
      ev.name = trace_->intern(dev_->vm.method(id).qualified_name);
      ev.detail = trace_->intern("local");
      ev.method_id = id;
      ev.a = static_cast<double>(level);
      trace_->emit(ev);
    }
    std::uint64_t cycles = 0;
    const char* outcome = "local";
    try {
      jit::CompileOptions copts{.opt_level = level};
      // Interprocedural BCE facts (opt-in, deploy-time): present only when
      // the knob is on and the length analysis completed.
      if (static_cast<std::size_t>(id) < length_facts_.size() &&
          !length_facts_[static_cast<std::size_t>(id)].empty())
        copts.param_facts = &length_facts_[static_cast<std::size_t>(id)];
      // Range-BCE facts (opt-in, deploy-time): per-bytecode in-bounds proofs
      // from the interval analysis.
      if (static_cast<std::size_t>(id) < range_inbounds_.size() &&
          !range_inbounds_[static_cast<std::size_t>(id)].empty())
        copts.range_inbounds = &range_inbounds_[static_cast<std::size_t>(id)];
      auto res =
          jit::compile_method(dev_->vm, id, copts, dev_->cfg.energy, trace_);
      // Charge the compilation work to the client core.
      dev_->meter.add_instrs(res.compile_work, dev_->cfg.energy);
      dev_->meter.add_dram_accesses(
          res.compile_work.total() / 50, dev_->cfg.energy);
      dev_->core.cycles += res.compile_cycles;
      cycles = res.compile_cycles;
      dev_->engine.install(id, std::move(res.program), level);
    } catch (const jit::CompileError&) {
      // Leave this callee interpreted (mixed-mode execution handles it).
      outcome = "compile-error";
    }
    if (trace_) {
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kCompileEnd;
      ev.t_s = now();
      ev.name = trace_->intern(dev_->vm.method(id).qualified_name);
      ev.detail = trace_->intern(outcome);
      ev.method_id = id;
      ev.a = static_cast<double>(level);
      ev.b = static_cast<double>(cycles);
      ev.ledger = obs::EnergyLedger::since(dev_->meter, c0);
      trace_->emit(ev);
    }
  }
}

void Client::ensure_baseline(const jvm::RtMethod& m, InvokeReport* report) {
  // Translate the potential method plus its compilation plan (the same plan
  // a local compile covers, so mixed-mode callees also run the stream).
  std::vector<std::int32_t> plan{m.id};
  for (std::int32_t callee : jit::collect_callees(dev_->vm, m.id))
    plan.push_back(callee);
  bool any = false;
  for (std::int32_t id : plan) {
    if (dev_->engine.baseline_installed(id)) continue;
    if (dev_->vm.method(id).baseline.empty()) continue;  // No stream built.
    any = true;
    energy::EnergyMeter c0;
    if (trace_) {
      c0 = dev_->meter.snapshot();
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kCompileBegin;
      ev.t_s = now();
      ev.name = trace_->intern(dev_->vm.method(id).qualified_name);
      ev.detail = trace_->intern("baseline");
      ev.method_id = id;
      ev.a = 0.5;  // Tier marker: L0.5.
      trace_->emit(ev);
    }
    const auto res = jit::compile_baseline(dev_->vm, id, dev_->cfg.energy);
    dev_->meter.add_instrs(res.compile_work, dev_->cfg.energy);
    dev_->meter.add_dram_accesses(res.compile_work.total() / 50,
                                  dev_->cfg.energy);
    dev_->core.cycles += res.compile_cycles;
    dev_->engine.install_baseline(id);
    if (trace_) {
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kCompileEnd;
      ev.t_s = now();
      ev.name = trace_->intern(dev_->vm.method(id).qualified_name);
      ev.detail = trace_->intern("baseline");
      ev.method_id = id;
      ev.a = 0.5;
      ev.b = static_cast<double>(res.compile_cycles);
      ev.ledger = obs::EnergyLedger::since(dev_->meter, c0);
      trace_->emit(ev);
    }
  }
  if (any && report) report->compiled_this_call = true;
}

jvm::Value Client::exec_local(const jvm::RtMethod& m,
                              std::span<const jvm::Value> args, ExecMode mode,
                              bool remote_compile, InvokeReport* report) {
  if (mode == ExecMode::kInterpret) {
    dev_->engine.set_force_interpret(true);
    try {
      const jvm::Value v = dev_->engine.invoke(m.id, args);
      dev_->engine.set_force_interpret(false);
      return v;
    } catch (...) {
      dev_->engine.set_force_interpret(false);
      throw;
    }
  }
  if (mode == ExecMode::kBaseline) {
    ensure_baseline(m, report);
    return dev_->engine.invoke(m.id, args);
  }
  ensure_compiled(m, static_cast<int>(mode), remote_compile, report);
  return dev_->engine.invoke(m.id, args);
}

void Client::charge_timeout_wait(double estimated_server_seconds) {
  // No (usable) response will arrive: the client sleeps through its
  // estimated window, then idles awake until the timeout expires (paper
  // Section 3.2).
  const double sleep =
      std::min(estimated_server_seconds, cfg_.response_timeout_s);
  charge_wait(sleep, cfg_.powerdown);
  charge_wait(cfg_.response_timeout_s - sleep, /*powered_down=*/false);
}

FailureClass Client::attempt_remote_invoke(const net::InvokeRequest& req,
                                           jvm::Value& result) {
  net::FaultInjector* fi = link_.fault_injector();

  // Uplink at the PA class the power control picked from the pilot.
  const radio::PowerClass pa = pilot_.estimate(now());
  const auto up = link_.client_send(req.wire_bytes(), pa, dev_->meter);
  extra_seconds_ += up.seconds;
  const double t_sent = now();

  if (up.lost) {
    charge_timeout_wait(req.estimated_server_seconds);
    return FailureClass::kUplinkLoss;
  }
  if (fi && fi->corrupt_uplink()) {
    // The frame arrived damaged. Run the real bytes through the hardened
    // decoder exactly as the server would; CRC32 framing turns the damage
    // into a detectable parse failure, i.e. silence from the server.
    auto bytes = req.encode();
    fi->corrupt(bytes);
    bool parsed = true;
    try {
      (void)net::InvokeRequest::decode(bytes);
    } catch (const FormatError&) {
      parsed = false;
    }
    if (!parsed) {
      charge_timeout_wait(req.estimated_server_seconds);
      return FailureClass::kCorrupt;
    }
  }
  Server::ExecOutcome out = server_.handle_invoke(req, t_sent, cfg_.client_id);
  if (out.unavailable) {
    charge_timeout_wait(req.estimated_server_seconds);
    return FailureClass::kOutage;
  }
  if (!out.response.ok)
    throw Error("remote execution failed: " + out.response.error);

  const double spike = fi ? fi->latency_spike() : 0.0;
  if (trace_ && spike > 0.0) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kFault;
    ev.t_s = now();
    ev.name = trace_->intern("latency-spike");
    ev.a = spike;
    trace_->emit(ev);
  }
  const double compute_seconds = out.compute_seconds + spike;
  if (compute_seconds > cfg_.response_timeout_s) {
    // Treated as lost connectivity (paper Section 3.2).
    charge_timeout_wait(req.estimated_server_seconds);
    return FailureClass::kTimeout;
  }

  // Power-down window: the client sleeps until its estimated wake time; the
  // server queues the response if it finishes earlier (mobile status table).
  const double wake_after = cfg_.powerdown
                                ? req.estimated_server_seconds
                                : compute_seconds;
  if (cfg_.powerdown) {
    if (compute_seconds <= wake_after) {
      // Response was queued; sleep the full window.
      charge_wait(wake_after, /*powered_down=*/true);
    } else {
      // Early re-activation penalty: sleep the window, then idle awake.
      charge_wait(wake_after, /*powered_down=*/true);
      charge_wait(compute_seconds - wake_after, /*powered_down=*/false);
    }
  } else {
    charge_wait(compute_seconds, /*powered_down=*/false);
  }

  // Downlink: receive and deserialize the result.
  const auto down =
      link_.client_recv(out.response.wire_bytes(), dev_->meter);
  extra_seconds_ += down.seconds;
  if (down.lost) {
    // The radio listened through the receive window but no frame arrived;
    // the client idles awake until the timeout gives up on the exchange.
    charge_wait(cfg_.response_timeout_s - (now() - t_sent),
                /*powered_down=*/false);
    return FailureClass::kDownlinkLoss;
  }
  if (fi) {
    // Hardened path: the response travels as a CRC32-sealed frame and may
    // arrive damaged; corruption is detected (never UB) and retried.
    auto bytes = out.response.encode();
    if (fi->corrupt_downlink()) fi->corrupt(bytes);
    net::InvokeResponse resp;
    try {
      resp = net::InvokeResponse::decode(bytes);
    } catch (const FormatError&) {
      return FailureClass::kCorrupt;
    }
    result = resp.result.empty()
                 ? jvm::Value::make_void()
                 : net::deserialize_value(dev_->vm, resp.result,
                                          /*charge=*/true);
    return FailureClass::kNone;
  }
  result = out.response.result.empty()
               ? jvm::Value::make_void()
               : net::deserialize_value(dev_->vm, out.response.result,
                                        /*charge=*/true);
  return FailureClass::kNone;
}

jvm::Value Client::exec_remote(const jvm::RtMethod& m,
                               std::span<const jvm::Value> args,
                               InvokeReport* report) {
  const jvm::EnergyProfile& prof = m.info->profile;
  const jvm::RtClass& rc = dev_->vm.cls(m.class_id);

  // Serialize parameters (client CPU work, charged).
  net::InvokeRequest req;
  req.cls = rc.cf.name;
  req.method = m.info->name;
  req.args.reserve(args.size());
  for (const jvm::Value& v : args)
    req.args.push_back(net::serialize_value(dev_->vm, v, /*charge=*/true));
  const double s = size_param(dev_->vm, *m.info, args);
  req.estimated_server_seconds =
      prof.valid ? std::max(0.0, prof.server_cycles.eval(s)) / cfg_.server_clock_hz
                 : 0.0;

  const ResiliencePolicy& rp = cfg_.resilience;
  ResilienceStats rs;

  if (!breaker_allows_remote()) {
    // Breaker open: skip the radio entirely and execute locally.
    rs.breaker_short_circuit = true;
  } else {
    if (breaker_.state == CircuitBreaker::State::kHalfOpen)
      rs.breaker_probe = true;
    jvm::Value result;
    for (int attempt = 1;; ++attempt) {
      ++rs.attempts;
      const double e0 = dev_->meter.total();
      energy::EnergyMeter m0;
      if (trace_) m0 = dev_->meter.snapshot();
      trace_remote_attempt(rs.breaker_probe ? "invoke-probe" : "invoke",
                           attempt, m.id);
      const FailureClass fc = attempt_remote_invoke(req, result);
      if (fc == FailureClass::kNone) {
        breaker_on_success();
        if (report) report->resilience = rs;
        return result;
      }
      const double wasted = dev_->meter.total() - e0;
      const auto ci = static_cast<std::size_t>(fc);
      ++rs.failures[ci];
      rs.wasted_j[ci] += wasted;
      rs.wasted_energy_j += wasted;
      trace_remote_failure(fc, attempt, m.id, m0);
      breaker_on_failure();
      if (attempt >= rp.max_attempts ||
          breaker_.state == CircuitBreaker::State::kOpen)
        break;
      // Exponential backoff before the next try (awake idle: the radio and
      // core stay powered, which is exactly the energy cost of retrying).
      const double backoff =
          rp.backoff_base_s * std::pow(rp.backoff_multiplier, attempt - 1);
      trace_backoff(backoff);
      charge_wait(backoff, /*powered_down=*/false);
      rs.backoff_seconds += backoff;
      ++rs.retries;
    }
  }

  // Remote path exhausted (or short-circuited): local fallback. Best local
  // mode from the cost model (cheap heuristic: reuse compiled code if
  // present, else interpret).
  if (report) {
    report->fallback_local = true;
    report->resilience = rs;
  }
  const int lvl = dev_->engine.compiled_level(m.id);
  return exec_local(m, args,
                    lvl == 0 ? ExecMode::kInterpret
                             : static_cast<ExecMode>(lvl),
                    false, report);
}

jvm::Value Client::run(const std::string& cls, const std::string& method,
                       std::span<const jvm::Value> args, Strategy strategy,
                       InvokeReport* report) {
  const std::int32_t mid = dev_->vm.find_method(cls, method);
  if (mid < 0) throw Error("client: no such method " + cls + "." + method);
  const jvm::RtMethod& m = dev_->vm.method(mid);
  if (!m.info->potential)
    throw Error("client: " + m.qualified_name + " is not a potential method");
  if (stats_.size() < dev_->vm.num_methods())
    stats_.resize(dev_->vm.num_methods());

  const double e0 = dev_->meter.total();
  // Total-system accounting: the server's meter total before this invocation
  // touches it. A pure read of the server's own lines — never mixed into the
  // client meter, never part of energy_j/total_j.
  const double s0 = server_.energy_j();
  const double t0 = now();
  energy::EnergyMeter ledger0;  // Tracing only; copies the same doubles e0
  if (trace_) {                 // summed, so ledger totals match bit-for-bit.
    ledger0 = dev_->meter.snapshot();
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kInvokeBegin;
    ev.t_s = t0;
    ev.name = trace_->intern(m.qualified_name);
    ev.detail = trace_->intern(strategy_name(strategy));
    ev.method_id = mid;
    trace_->emit(ev);
  }

  ExecMode mode;
  bool remote_compile = false;
  switch (strategy) {
    case Strategy::kRemote: mode = ExecMode::kRemote; break;
    case Strategy::kInterpret: mode = ExecMode::kInterpret; break;
    case Strategy::kLocal1: mode = ExecMode::kLocal1; break;
    case Strategy::kLocal2: mode = ExecMode::kLocal2; break;
    case Strategy::kLocal3: mode = ExecMode::kLocal3; break;
    case Strategy::kAdaptiveLocal:
    case Strategy::kAdaptiveAdaptive: {
      const double s = size_param(dev_->vm, *m.info, args);
      // wcec_seed: first sight of a method computes its guaranteed energy
      // interval from this invocation's exact argument facts (a deploy-time
      // analysis has no argument facts and proves almost nothing finite).
      if (wcec_ != nullptr && wcec_known_[static_cast<std::size_t>(mid)] == 0)
        seed_wcec_bound(m, args);
      // The decision-making itself is cheap but not free (the paper notes
      // the overheads are "too small to highlight in the graph").
      dev_->core.charge_class(energy::InstrClass::kLoad, 40);
      dev_->core.charge_class(energy::InstrClass::kAluSimple, 120);
      dev_->core.charge_class(energy::InstrClass::kAluComplex, 30);
      dev_->core.charge_class(energy::InstrClass::kBranch, 20);
      const Decision d =
          decide(m, stats_[mid], s, channel_.at(now()),
                 strategy == Strategy::kAdaptiveAdaptive);
      mode = d.mode;
      remote_compile = d.remote_compile;
      break;
    }
  }

  jvm::Value result;
  try {
    if (mode == ExecMode::kRemote) {
      result = exec_remote(m, args, report);
    } else {
      result = exec_local(m, args, mode, remote_compile, report);
    }
  } catch (const BoundsFault& bf) {
    // Graceful degradation (shadow-bounds mode): the invocation aborts with
    // a typed fault, but the session survives — frames unwind via RAII, the
    // arena heap watermark is still released by the caller's scope, and the
    // next invocation proceeds normally. Energy spent before the abort stays
    // charged (the meter only ever accumulates).
    if (report) {
      report->mode = mode;
      report->energy_j = dev_->meter.total() - e0;
      report->server_j = server_.energy_j() - s0;
      report->seconds = now() - t0;
      ++report->resilience.bounds_faults;
    }
    if (trace_) {
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kBoundsFault;
      ev.t_s = now();
      ev.name = trace_->intern(m.qualified_name);
      ev.detail = trace_->intern(bf.what());
      ev.method_id = mid;
      ev.ledger = obs::EnergyLedger::since(dev_->meter, ledger0);
      ev.ledger.server_j = server_.energy_j() - s0;
      trace_->emit(ev);
    }
    throw;
  }

  if (report) {
    report->mode = mode;
    report->energy_j = dev_->meter.total() - e0;
    report->server_j = server_.energy_j() - s0;
    report->seconds = now() - t0;
  }
  if (trace_) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kInvokeEnd;
    ev.t_s = now();
    ev.name = trace_->intern(m.qualified_name);
    ev.detail = trace_->intern(exec_mode_name(mode));
    ev.method_id = mid;
    ev.a = now() - t0;
    // ledger.total_j is the meter-total delta over the invocation — the same
    // expression InvokeReport::energy_j uses — so per-cell invoke-end sums
    // reproduce StrategyResult::total_energy_j exactly. server_j is the same
    // delta expression over the *server's* lines (= InvokeReport::server_j),
    // kept out of total_j: the figures report the client battery only.
    ev.ledger = obs::EnergyLedger::since(dev_->meter, ledger0);
    ev.ledger.server_j = server_.energy_j() - s0;
    trace_->emit(ev);
  }
  return result;
}

}  // namespace javelin::rt
