#include "rt/profiler.hpp"

#include <algorithm>

#include "net/serializer.hpp"
#include "rt/client.hpp"
#include "rt/device.hpp"
#include "support/fit.hpp"

namespace javelin::rt {

namespace {

PolyFit fit_series(const std::vector<double>& xs, std::vector<double> ys) {
  // Pick the richest polynomial the sample count supports (degree <= 2).
  std::size_t degree = 2;
  if (xs.size() < 3) degree = xs.size() - 1;
  // Degenerate x range (constant-cost method): fit a constant.
  const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  if (*mx - *mn < 1e-9) degree = 0;
  if (degree == 0) {
    double mean = 0;
    for (double y : ys) mean += y;
    return PolyFit{{mean / static_cast<double>(ys.size())}};
  }
  return fit_polynomial(xs, ys, degree);
}

/// Compile the method's plan at `level` into the engine; returns
/// (total compile energy, total image bytes, total compile cycles).
struct PlanCompile {
  double energy = 0.0;
  std::uint64_t image_bytes = 0;
  std::uint64_t cycles = 0;
};

PlanCompile compile_plan(Device& dev, std::int32_t method_id, int level,
                         bool install) {
  PlanCompile out;
  std::vector<std::int32_t> plan{method_id};
  for (std::int32_t callee : jit::collect_callees(dev.vm, method_id))
    plan.push_back(callee);
  for (std::int32_t id : plan) {
    try {
      auto res = jit::compile_method(dev.vm, id,
                                     jit::CompileOptions{.opt_level = level},
                                     dev.cfg.energy);
      out.energy += res.compile_energy;
      out.cycles += res.compile_cycles;
      out.image_bytes += res.program.image_bytes();
      if (install) dev.engine.install(id, std::move(res.program), level);
    } catch (const jit::CompileError&) {
      // Interpreted fallback for non-compilable callees.
    }
  }
  return out;
}

}  // namespace

void profile_application(
    std::vector<jvm::ClassFile>& app,
    const std::map<std::string, ProfileWorkload>& workloads,
    std::uint64_t seed) {
  // Measurement replicas. The client replica measures local modes; the
  // server replica measures remote execution time.
  Device client(isa::client_machine());
  Device server(isa::server_machine());
  client.core.step_limit = 200'000'000'000ULL;
  server.core.step_limit = 200'000'000'000ULL;
  client.deploy(app);
  server.deploy(app);

  for (jvm::ClassFile& cf : app) {
    for (jvm::MethodInfo& mi : cf.methods) {
      if (!mi.potential) continue;
      const std::string key = cf.name + "." + mi.name;
      const auto wit = workloads.find(key);
      if (wit == workloads.end()) continue;
      const ProfileWorkload& wl = wit->second;
      if (wl.scales.empty())
        throw Error("profiler: no scales for " + key);

      const std::int32_t cid = client.vm.find_method(cf.name, mi.name);
      const std::int32_t sid = server.vm.find_method(cf.name, mi.name);

      std::vector<double> xs;
      std::array<std::vector<double>, jvm::kNumLocalModes> energy_ys;
      std::array<std::vector<double>, jvm::kNumLocalModes> cycle_ys;
      std::vector<double> server_cycle_ys, req_ys, resp_ys;

      // Server side runs Level-3 native (installed once).
      compile_plan(server, sid, 3, /*install=*/true);

      // Two measurement repetitions per scale with different random inputs:
      // the fit then averages per-input workload variance (quicksort pivot
      // luck, query selectivity), which is what lets the fitted curve hit
      // the paper's ~2% accuracy.
      constexpr std::size_t kReps = 2;

      // --- local modes (compile once per level, measure at every scale) ----
      for (std::size_t mode = 0; mode < jvm::kNumLocalModes; ++mode) {
        client.engine.clear_code();
        if (mode >= 1)
          compile_plan(client, cid, static_cast<int>(mode), /*install=*/true);
        client.engine.set_force_interpret(mode == 0);

        for (std::size_t si = 0; si < wl.scales.size(); ++si) {
          for (std::size_t rep = 0; rep < kReps; ++rep) {
            Rng rng(seed ^ (si * 0x9e37u) ^ (rep * 0xc2b2u));
            const std::size_t mark = client.arena.heap_mark();
            const std::vector<jvm::Value> args =
                wl.make_args(client.vm, wl.scales[si], rng);
            if (mode == 0)
              xs.push_back(Client::size_param(client.vm, mi, args));

            const auto e0 = client.meter.snapshot();
            const std::uint64_t c0 = client.core.cycles;
            client.engine.invoke(cid, args);
            energy_ys[mode].push_back(client.meter.since(e0).total());
            cycle_ys[mode].push_back(
                static_cast<double>(client.core.cycles - c0));

            if (mode == 0) {
              std::uint64_t req_bytes = 64;  // message framing
              for (const jvm::Value& v : args)
                req_bytes += net::serialize_value(client.vm, v,
                                                  /*charge=*/false)
                                 .size() +
                             4;
              req_ys.push_back(static_cast<double>(req_bytes));
            }
            client.arena.heap_release(mark);
          }
        }
        client.engine.set_force_interpret(false);
      }

      // --- server execution time + response size ---------------------------
      for (std::size_t si = 0; si < wl.scales.size(); ++si) {
        for (std::size_t rep = 0; rep < kReps; ++rep) {
          Rng rng(seed ^ (si * 0x9e37u) ^ (rep * 0xc2b2u));
          const std::size_t mark = server.arena.heap_mark();
          const std::vector<jvm::Value> args =
              wl.make_args(server.vm, wl.scales[si], rng);
          const std::uint64_t c0 = server.core.cycles;
          const jvm::Value result = server.engine.invoke(sid, args);
          server_cycle_ys.push_back(
              static_cast<double>(server.core.cycles - c0));
          std::uint64_t resp_bytes = 16;
          if (result.kind != jvm::TypeKind::kVoid)
            resp_bytes += net::serialize_value(server.vm, result,
                                               /*charge=*/false)
                              .size();
          resp_ys.push_back(static_cast<double>(resp_bytes));
          server.arena.heap_release(mark);
        }
      }

      // --- compilation costs (constant per method/platform) ----------------
      jvm::EnergyProfile prof;
      for (int level = 1; level <= 3; ++level) {
        const PlanCompile pc =
            compile_plan(client, cid, level, /*install=*/false);
        prof.compile_energy[level - 1] = pc.energy;
        prof.code_size_bytes[level - 1] =
            static_cast<std::uint32_t>(pc.image_bytes);
      }

      // --- curve fitting ---------------------------------------------------
      for (std::size_t mode = 0; mode < jvm::kNumLocalModes; ++mode) {
        prof.local_energy[mode] = fit_series(xs, energy_ys[mode]);
        prof.local_cycles[mode] = fit_series(xs, cycle_ys[mode]);
      }
      prof.server_cycles = fit_series(xs, server_cycle_ys);
      prof.request_bytes = fit_series(xs, req_ys);
      prof.response_bytes = fit_series(xs, resp_ys);
      prof.valid = true;
      mi.profile = prof;
    }
  }
}

}  // namespace javelin::rt
