// Execution/compilation strategy taxonomy (paper Fig 5).
#pragma once

#include <cstdint>

namespace javelin::rt {

/// The seven strategies evaluated in the paper.
enum class Strategy : std::uint8_t {
  kRemote = 0,      ///< R:  all potential methods execute on the server.
  kInterpret,       ///< I:  bytecode interpretation on the client.
  kLocal1,          ///< L1: client-compiled native, no optimizations.
  kLocal2,          ///< L2: + CSE, LICM, strength reduction, redundancy elim.
  kLocal3,          ///< L3: + virtual method inlining.
  kAdaptiveLocal,   ///< AL: adaptive execution, local compilation.
  kAdaptiveAdaptive ///< AA: adaptive execution, adaptive compilation.
};

inline constexpr Strategy kAllStrategies[] = {
    Strategy::kRemote,        Strategy::kInterpret, Strategy::kLocal1,
    Strategy::kLocal2,        Strategy::kLocal3,    Strategy::kAdaptiveLocal,
    Strategy::kAdaptiveAdaptive};

const char* strategy_name(Strategy s);

/// What the helper method decides for one invocation. Values 1..3 double as
/// optimization levels, which several call sites rely on; kBaseline (the
/// L0.5 translation tier, opt-in via DecisionPolicy::baseline_tier) is
/// deliberately appended after kRemote so that mapping stays intact.
enum class ExecMode : std::uint8_t {
  kInterpret = 0,
  kLocal1 = 1,
  kLocal2 = 2,
  kLocal3 = 3,
  kRemote = 4,
  kBaseline = 5,
};

const char* exec_mode_name(ExecMode m);

}  // namespace javelin::rt
