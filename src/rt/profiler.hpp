// Deploy-time energy profiling (paper Section 3.2).
//
// "The local compilation energy values are obtained by profiling; these
//  values are then incorporated into the applications' class files as static
//  final variables. ... We employ a curve fitting based technique to estimate
//  the energy cost of executing a method locally."
//
// When an application is published on the server, each potential method is
// measured on a client-machine replica at several workload scales in every
// local mode (Interpreter, Local1..3), on the server replica (for the
// power-down estimate), and through the serializer (payload sizes). Least-
// squares polynomials of the size parameter are fitted and written into the
// class-file EnergyProfile attribute together with the per-level compilation
// energies and code-image sizes.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "jvm/classfile.hpp"
#include "support/rng.hpp"

namespace javelin::jvm {
class Jvm;
}

namespace javelin::rt {

/// How to drive one potential method at a given scale: build its invocation
/// arguments inside the given JVM's heap (host-side, uncharged).
struct ProfileWorkload {
  std::vector<double> scales;  ///< Scale knobs passed to make_args.
  std::function<std::vector<jvm::Value>(jvm::Jvm&, double scale, Rng&)>
      make_args;
};

/// Profile every potential method of `app` that has a workload entry
/// (keyed "Class.method"); fills the EnergyProfile attributes in place.
/// Deterministic for a given seed.
void profile_application(
    std::vector<jvm::ClassFile>& app,
    const std::map<std::string, ProfileWorkload>& workloads,
    std::uint64_t seed = 42);

}  // namespace javelin::rt
