// The mobile client runtime: the paper's core contribution.
//
// For every invocation of a "potential method" the client's helper-method
// logic decides *where to execute* (remotely on the server, or locally —
// interpreted or compiled at Level 1/2/3) and, under AA, *where to compile*
// (locally, or by downloading pre-compiled native code from the server).
//
// Decision inputs (Section 3.2):
//  * the method's deploy-time energy profile (curve-fitted cost models per
//    mode, compile energies, code sizes) stored in the class file,
//  * EWMA predictions of the future size parameter and communication power
//    ( s̄_k = u1 s̄_{k-1} + (1-u1) s_k,  p̄_k likewise, u1 = u2 = 0.7 ),
//  * the invocation count k — AL "optimistically assumes the method will be
//    executed k more times" to amortize compilation, and
//  * the pilot-estimated channel condition (PA power class).
//
// Remote execution (Section 2, Fig 4): parameters are serialized and sent;
// the client powers down (leakage = 10% of normal power) for its estimate of
// the server time; the server queues the response if it finishes early
// (mobile status table); an early-woken client idles at normal power until
// the response arrives; a response missing past the timeout triggers local
// fallback execution.
//
// Resilience (generalizing the paper's single timeout-fallback event): every
// remote exchange — InvokeRequest and CompileRequest alike — runs under a
// bounded-retry policy with exponential backoff, each failed attempt charged
// its true radio + idle/power-down energy; a per-session circuit breaker
// counts consecutive remote failures and, once open, blacklists
// ExecMode::kRemote and remote compilation so the helper-method decision
// degrades gracefully to local modes, half-opening with a single probe after
// a cooldown. The default policy (1 attempt, breaker disabled) reproduces
// the paper's behaviour bit-for-bit; `reset_session()` clears all breaker /
// retry / EWMA state so sweep determinism is preserved.
#pragma once

#include <array>
#include <span>

#include "analysis/wcec.hpp"
#include "jit/compiler.hpp"
#include "net/link.hpp"
#include "obs/trace.hpp"
#include "rt/server.hpp"
#include "rt/strategy.hpp"

namespace javelin::rt {

/// Why one remote exchange attempt failed.
enum class FailureClass : std::uint8_t {
  kNone = 0,
  kUplinkLoss,    ///< Request never reached the server.
  kDownlinkLoss,  ///< Response transmission lost.
  kOutage,        ///< Server inside an outage window.
  kCorrupt,       ///< Frame delivered but failed CRC32 / decoding.
  kTimeout,       ///< Response later than response_timeout_s.
};
inline constexpr std::size_t kNumFailureClasses = 6;

const char* failure_class_name(FailureClass f);

/// Retry / circuit-breaker policy for remote exchanges. The defaults are the
/// paper's semantics: one attempt, no breaker.
struct ResiliencePolicy {
  int max_attempts = 1;           ///< Total tries per exchange (1 = no retry).
  double backoff_base_s = 0.05;   ///< First retry waits this long (awake).
  double backoff_multiplier = 2.0;
  int breaker_threshold = 0;      ///< Consecutive failures to open; 0 = off.
  double breaker_cooldown_s = 10.0;  ///< Open -> half-open probe delay.
};

/// Per-invocation resilience telemetry (part of InvokeReport).
struct ResilienceStats {
  int attempts = 0;  ///< Remote exchange attempts (0 = never went remote).
  int retries = 0;   ///< attempts beyond the first.
  double backoff_seconds = 0.0;   ///< Time spent idling between retries.
  double wasted_energy_j = 0.0;   ///< Client energy burnt by failed attempts.
  std::array<int, kNumFailureClasses> failures{};      ///< By FailureClass.
  std::array<double, kNumFailureClasses> wasted_j{};   ///< Energy by class.
  bool breaker_short_circuit = false;  ///< Remote skipped: breaker open.
  bool breaker_probe = false;          ///< This exchange was a half-open probe.
  int bounds_faults = 0;  ///< Shadow-bounds violations aborted this invocation.
};

/// Circuit-breaker state over the remote path (execution + compilation).
struct CircuitBreaker {
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };
  State state = State::kClosed;
  int consecutive_failures = 0;
  double opened_at = 0.0;  ///< Simulated time the breaker last opened.
  // Transition counters (telemetry; cleared by reset_session()).
  int times_opened = 0;
  int times_half_opened = 0;
  int times_reclosed = 0;
};

/// Opt-in static-analysis seeding of the helper-method decision. With
/// `static_seed` off (the default) the decision logic is byte-identical to
/// the paper's: no analysis runs at deploy and decide() never consults it.
/// With it on, class-load-time analysis (src/analysis) runs once per deploy:
///  * methods whose offload-safety verdict is not offloadable (static-field
///    writes, unresolvable callees) have ExecMode::kRemote excluded from the
///    candidate set, exactly like an open circuit breaker; and
///  * methods containing loops amortize compilation over at least
///    `seed_invocations` expected executions while their observed invocation
///    count is still below it — removing the cold-start bias toward
///    interpret/remote on the first few calls.
struct DecisionPolicy {
  bool static_seed = false;
  double seed_invocations = 8.0;
  /// If > 0, also exclude remote execution when the static request-size
  /// bound exceeds this many bytes (or is unbounded, i.e. ref params).
  std::int64_t max_request_bytes = 0;
  /// Opt-in L0.5 baseline tier: decide() also considers executing through
  /// the method's pre-resolved superinstruction stream. Costed as a one-off
  /// linear translation (jit::compile_baseline — ~24x cheaper than L1) plus
  /// per-run interpretation discounted by `baseline_discount` (the dispatch
  /// share the fused stream saves). OFF by default: the decision sequence,
  /// trace format and every figure are byte-identical unless enabled.
  bool baseline_tier = false;
  double baseline_discount = 0.08;
  /// Opt-in interprocedural bounds-check elimination: at deploy, run the
  /// array-length-fact pass (analysis/lengths.hpp) and hand each method's
  /// per-parameter facts to the L3 compiler, which elides guards the facts
  /// prove redundant across call boundaries. OFF by default: compiled code,
  /// energy and every figure are byte-identical unless enabled. The shadow-
  /// bounds mode (mem/shadow.hpp) dynamically cross-validates every elision.
  bool interprocedural_bce = false;
  /// Opt-in range-proven bounds-check elimination: at deploy, run the
  /// interval analysis (analysis/intervals.hpp) per method — entry states
  /// refined by the array-length-fact pass — and hand each method's
  /// per-bytecode "index proven in [0, length)" flags to the L3 compiler,
  /// which drops both guards at those sites (IInstr::kGuardProofRange).
  /// Catches locally-allocated arrays and loop-bounded indices the
  /// dominating-access and parameter-fact rules cannot. OFF by default:
  /// compiled code, energy and every figure are byte-identical unless
  /// enabled; shadow-bounds mode cross-validates every elision.
  bool range_bce = false;
  /// Opt-in bound-aware decision seeding from the guaranteed static energy
  /// interval [bcec_j, wcec_j] (analysis/wcec.hpp, interpreter tier). The
  /// analysis is built once at deploy; each method's interval is computed at
  /// its *first* invocation from the exact argument facts (int values,
  /// array lengths) — the interval is a guaranteed bound for that seeding
  /// invocation and a decision heuristic thereafter (the soundness-critical
  /// consumers — the containment oracle and range-BCE — recompute per use).
  /// Two effects on decide():
  ///  * WCEC amortization floor — a cold method whose worst-case interpreted
  ///    energy over `seed_invocations` runs exceeds its L1 compile energy
  ///    amortizes compilation over at least `seed_invocations` expected
  ///    executions (same floor mechanism as `static_seed`). This is a
  ///    worst-case-informed *heuristic*, not a proven win: the test shows
  ///    amortization is possible when executions land near the WCEC; a
  ///    guarantee would need the best case (bcec_j) to clear the compile
  ///    energy, which vetoes almost every method; and
  ///  * interval remote-veto — ExecMode::kRemote is excluded while the
  ///    method's finite WCEC (a guaranteed per-run local ceiling) undercuts
  ///    the current per-run remote-energy estimate: the curve-fitted
  ///    prediction cannot beat a bound that is certain.
  /// OFF by default: decide() never consults the table and every figure is
  /// byte-identical.
  bool wcec_seed = false;
};

struct ClientConfig {
  isa::MachineConfig machine = isa::client_machine();
  double u1 = 0.7;  ///< EWMA weight for the size parameter.
  double u2 = 0.7;  ///< EWMA weight for the communication power.
  bool powerdown = true;  ///< Power down while waiting for the server.
  double response_timeout_s = 5.0;
  double pilot_period_s = 20e-3;
  double server_clock_hz = 750e6;  ///< Known from the service handshake.
  std::uint32_t client_id = 1;
  ResiliencePolicy resilience;  ///< Defaults preserve the paper's behaviour.
  DecisionPolicy decision;      ///< Defaults preserve the paper's behaviour.
};

/// Telemetry for one top-level invocation.
struct InvokeReport {
  ExecMode mode = ExecMode::kInterpret;
  bool compiled_this_call = false;
  bool remote_compile = false;
  bool fallback_local = false;  ///< Remote attempt lost/timed out.
  double energy_j = 0.0;        ///< Client energy for this invocation.
  /// Wall-powered server energy spent on behalf of this invocation (remote
  /// execution + remote compilation), measured as a delta of
  /// Server::energy_j() around the call. Zero for purely local invocations.
  /// NOT part of energy_j — the figures report the client battery only;
  /// total-system energy is energy_j + server_j.
  double server_j = 0.0;
  double seconds = 0.0;         ///< Wall-clock time for this invocation.
  ResilienceStats resilience;   ///< Retry/breaker telemetry.
};

class Client {
 public:
  Client(ClientConfig cfg, Server& server, radio::ChannelProcess& channel,
         net::Link& link);

  /// Load + link the application on the client.
  void deploy(const std::vector<jvm::ClassFile>& app);

  /// Execute one invocation of a potential method under `strategy`.
  jvm::Value run(const std::string& cls, const std::string& method,
                 std::span<const jvm::Value> args, Strategy strategy,
                 InvokeReport* report = nullptr);

  /// Advance the wall-clock without charging energy (think time between
  /// invocations; the channel keeps evolving meanwhile).
  void skip_time(double seconds) { extra_seconds_ += seconds; }

  /// Simulated wall-clock (CPU time + communication/wait time).
  double now() const {
    return dev_->cfg.seconds_for_cycles(dev_->core.cycles) + extra_seconds_;
  }

  Device& device() { return *dev_; }
  const ClientConfig& config() const { return cfg_; }

  /// Breaker state (telemetry; see CircuitBreaker).
  const CircuitBreaker& breaker() const { return breaker_; }
  /// Invocation count the EWMA predictor has seen for `method_id` (0 after
  /// deploy/reset; exposed so tests can check reset_session()).
  std::uint64_t invocation_count(std::int32_t method_id) const {
    return stats_.at(static_cast<std::size_t>(method_id)).k;
  }

  /// Drop adaptive state, breaker/retry state and installed code (fresh
  /// application session).
  void reset_session();

  /// Observability hook (null = disabled, the default). Forwards to the
  /// execution engine and the link (hence the fault injector). Hooks only
  /// *read* simulated state — no charge, no RNG draw — so enabling tracing
  /// leaves every report and sweep output bit-identical.
  void set_trace(obs::TraceBuffer* t) {
    trace_ = t;
    dev_->engine.set_trace(t);
    link_.set_trace(t);
  }
  obs::TraceBuffer* trace() const { return trace_; }

  /// Scalar size parameter of a method invocation per its SizeParamSpec.
  static double size_param(const jvm::Jvm& vm, const jvm::MethodInfo& mi,
                           std::span<const jvm::Value> args);

 private:
  struct MethodStats {
    std::uint64_t k = 0;    ///< Invocations so far.
    double ewma_s = 0.0;
    double ewma_p = 0.0;
  };

  struct Decision {
    ExecMode mode = ExecMode::kInterpret;
    bool remote_compile = false;  ///< For local modes under AA.
  };

  /// The helper-method logic: evaluate EI / ER / EL1..EL3 and pick the min.
  /// With the breaker open, remote candidates are excluded.
  Decision decide(const jvm::RtMethod& m, MethodStats& st, double s,
                  radio::PowerClass channel_now, bool adaptive_compilation);

  /// Run the static-analysis passes over the deployed classes and fill the
  /// per-method seed tables (DecisionPolicy::static_seed only; never called
  /// on the default path).
  void seed_from_analysis();

  /// Run the interprocedural array-length-fact pass and fill length_facts_
  /// (DecisionPolicy::interprocedural_bce only; never on the default path).
  void seed_length_facts();

  /// Run the interval analysis per method and fill range_inbounds_
  /// (DecisionPolicy::range_bce only; never on the default path).
  void seed_range_facts();

  /// Build the static energy-bound analysis over the deployed classes
  /// (DecisionPolicy::wcec_seed only; never on the default path). Intervals
  /// themselves are computed lazily per method — see seed_wcec_bound().
  void seed_wcec_bounds();

  /// Compute and cache `m`'s interpreter-tier energy interval from the
  /// exact facts of this invocation's arguments (int values as singleton
  /// intervals, array refs with their exact length). Called once per method,
  /// on its first invocation (wcec_seed only).
  void seed_wcec_bound(const jvm::RtMethod& m,
                       std::span<const jvm::Value> args);

  /// Whether the breaker currently admits a remote exchange. Transitions
  /// open -> half-open once the cooldown has elapsed (the admitted exchange
  /// is the probe).
  bool breaker_allows_remote();
  void breaker_on_success();
  void breaker_on_failure();

  /// Charge the lost-exchange wait (sleep through the estimated window, then
  /// idle awake until the timeout expires) — the paper's Section 3.2 event.
  void charge_timeout_wait(double estimated_server_seconds);

  /// Estimated per-invocation remote-execution energy E''(m, s, p).
  double remote_energy(const jvm::EnergyProfile& prof, double s,
                       double tx_power_w) const;

  /// Make sure `m` (and its compilation plan) is installed at `level`.
  void ensure_compiled(const jvm::RtMethod& m, int level, bool remote,
                       InvokeReport* report);

  /// Make sure `m` (and its compilation plan) has the L0.5 baseline
  /// translation installed, charging the linear-translation energy/cycles
  /// (DecisionPolicy::baseline_tier paths only).
  void ensure_baseline(const jvm::RtMethod& m, InvokeReport* report);

  jvm::Value exec_local(const jvm::RtMethod& m, std::span<const jvm::Value> args,
                        ExecMode mode, bool remote_compile,
                        InvokeReport* report);
  jvm::Value exec_remote(const jvm::RtMethod& m,
                         std::span<const jvm::Value> args,
                         InvokeReport* report);

  /// One remote-invocation exchange attempt: send, wait, receive. Returns
  /// kNone and fills `result` on success, else the failure class (with all
  /// failure-path energy already charged).
  FailureClass attempt_remote_invoke(const net::InvokeRequest& req,
                                     jvm::Value& result);

  /// Charge `seconds` of idle/power-down time to the meter.
  void charge_wait(double seconds, bool powered_down);

  // ---- trace emission (no-ops when trace_ is null) --------------------------
  void trace_breaker(CircuitBreaker::State from, CircuitBreaker::State to);
  void trace_remote_attempt(const char* what, int attempt, std::int32_t mid);
  void trace_remote_failure(FailureClass fc, int attempt, std::int32_t mid,
                            const energy::EnergyMeter& before);
  void trace_backoff(double seconds);

  ClientConfig cfg_;
  Server& server_;
  radio::ChannelProcess& channel_;
  radio::PilotEstimator pilot_;
  net::Link& link_;
  std::unique_ptr<Device> dev_;
  double extra_seconds_ = 0.0;  ///< Non-CPU elapsed time.
  std::vector<MethodStats> stats_;
  // Static-analysis seed tables, indexed by method id. Empty unless
  // DecisionPolicy::static_seed ran at deploy; reset_session() keeps them
  // (static facts survive adaptive-state resets).
  std::vector<double> static_seed_k_;
  std::vector<char> static_remote_ok_;
  // Per-method, per-parameter array-length facts for the interprocedural
  // BCE knob, indexed by method id. Empty unless interprocedural_bce ran at
  // deploy; like the seed tables, reset_session() keeps them.
  std::vector<std::vector<jit::ArrayParamFact>> length_facts_;
  // Per-method, per-bytecode-pc "proven in-bounds" flags for the range-BCE
  // knob, indexed by method id. Empty unless range_bce ran at deploy;
  // reset_session() keeps them.
  std::vector<std::vector<std::uint8_t>> range_inbounds_;
  // Per-method guaranteed interpreter-tier energy intervals for the
  // wcec_seed knob, indexed by method id; each entry is computed at the
  // method's first invocation from the exact argument facts (wcec_known_
  // marks filled entries). Empty unless wcec_seed ran at deploy;
  // reset_session() keeps them (static facts survive resets).
  std::vector<analysis::EnergyInterval> wcec_bounds_;
  std::vector<char> wcec_known_;
  std::unique_ptr<analysis::WcecAnalysis> wcec_;
  CircuitBreaker breaker_;
  obs::TraceBuffer* trace_ = nullptr;
};

const char* breaker_state_name(CircuitBreaker::State s);

}  // namespace javelin::rt
