#include "rt/server.hpp"

#include "net/serializer.hpp"

namespace javelin::rt {

Server::Server()
    : dev_(std::make_unique<Device>(isa::server_machine())),
      client_twin_(std::make_unique<Device>(isa::client_machine())) {}

void Server::deploy(const std::vector<jvm::ClassFile>& app) {
  dev_->deploy(app);
  client_twin_->deploy(app);
  // The server runs fully optimized native code (it is wall-powered; only
  // its speed matters for the client's power-down estimate).
  for (std::size_t id = 0; id < dev_->vm.num_methods(); ++id) {
    try {
      auto res = jit::compile_method(dev_->vm, static_cast<std::int32_t>(id),
                                     jit::CompileOptions{.opt_level = 3},
                                     dev_->cfg.energy);
      dev_->engine.install(static_cast<std::int32_t>(id),
                           std::move(res.program), 3);
    } catch (const jit::CompileError&) {
      // Non-compilable methods stay interpreted on the server too.
    }
  }
}

Server::ExecOutcome Server::handle_invoke(const net::InvokeRequest& req,
                                          double arrival_time,
                                          std::uint32_t client_id) {
  ExecOutcome out;
  if (in_outage(arrival_time)) {
    // The request dies at the door: no status-table entry, no response. The
    // client discovers this only by timing out.
    out.unavailable = true;
    return out;
  }
  MobileStatus& st = status_[client_id];
  st.request_time = arrival_time;
  st.estimated_wake = arrival_time + req.estimated_server_seconds;

  const std::int32_t method_id = dev_->vm.find_method(req.cls, req.method);
  if (method_id < 0) {
    out.response.ok = false;
    out.response.error = "no such method " + req.cls + "." + req.method;
    return out;
  }
  const jvm::RtMethod& m = dev_->vm.method(method_id);
  if (!m.info->potential) {
    out.response.ok = false;
    out.response.error = "method not annotated as potential";
    return out;
  }
  if (req.args.size() != m.info->num_args()) {
    out.response.ok = false;
    out.response.error = "argument count mismatch";
    return out;
  }

  // Execute inside a heap bracket so 300-execution scenarios don't exhaust
  // the server arena.
  const std::size_t mark = dev_->arena.heap_mark();
  const std::uint64_t cycles_before = dev_->core.cycles;
  try {
    // Deserialize parameter objects into the server heap (reflection-style
    // invocation per Fig 4). Server-side costs land on the server machine's
    // meter — surfaced through Server::energy_j() for total-system
    // accounting — and the cycle count sets the client's wait estimate.
    std::vector<jvm::Value> args;
    args.reserve(req.args.size());
    for (std::size_t i = 0; i < req.args.size(); ++i) {
      jvm::Value v =
          net::deserialize_value(dev_->vm, req.args[i], /*charge=*/true);
      // Primitive kinds arrive self-describing; refs must match.
      args.push_back(v);
    }
    const jvm::Value result = dev_->engine.invoke(method_id, args);
    if (result.kind != jvm::TypeKind::kVoid)
      out.response.result =
          net::serialize_value(dev_->vm, result, /*charge=*/true);
    out.response.ok = true;
  } catch (const Error& e) {
    out.response.ok = false;
    out.response.error = e.what();
  }
  dev_->arena.heap_release(mark);

  out.compute_seconds =
      queue_delay_ +
      dev_->cfg.seconds_for_cycles(dev_->core.cycles - cycles_before);
  st.response_ready = arrival_time + out.compute_seconds;
  st.response_queued = st.response_ready < st.estimated_wake;
  return out;
}

net::CompileResponse Server::handle_compile(const net::CompileRequest& req) {
  const auto key = std::make_pair(req.cls + "." + req.method, req.level);
  const auto it = compile_cache_.find(key);
  if (it != compile_cache_.end()) return it->second;

  net::CompileResponse resp;
  resp.level = req.level;
  const std::int32_t method_id =
      client_twin_->vm.find_method(req.cls, req.method);
  if (method_id < 0) {
    resp.ok = false;
    resp.error = "no such method " + req.cls + "." + req.method;
    return resp;
  }
  try {
    // Compile the requested method and its compilation plan for the client
    // ABI (the twin shares the client's address layout).
    std::vector<std::int32_t> plan{method_id};
    for (std::int32_t callee : jit::collect_callees(client_twin_->vm, method_id))
      plan.push_back(callee);
    for (std::int32_t id : plan) {
      auto res = jit::compile_method(client_twin_->vm, id,
                                     jit::CompileOptions{.opt_level = req.level},
                                     client_twin_->cfg.energy);
      // The server is 7.5x faster than the client core the meter models.
      resp.server_seconds += static_cast<double>(res.compile_cycles) /
                             isa::server_machine().clock_hz;
      // Total-system accounting (Server::energy_j): the compile work is
      // charged to the twin's meter under the client table — the same
      // add_instrs + dram/50 rule rt::Client applies to local compiles — so
      // server-side compile energy is directly comparable to the local
      // alternative. Memoized repeats (cache hits above) charge nothing.
      // Nothing client-visible changes: server_seconds, the response bytes
      // and the twin's core cycles are all untouched.
      client_twin_->meter.add_instrs(res.compile_work,
                                     client_twin_->cfg.energy);
      client_twin_->meter.add_dram_accesses(res.compile_work.total() / 50,
                                            client_twin_->cfg.energy);
      const jvm::RtMethod& m = client_twin_->vm.method(id);
      const jvm::RtClass& rc = client_twin_->vm.cls(m.class_id);
      net::CompiledUnit unit;
      unit.cls = rc.cf.name;
      unit.method = m.info->name;
      unit.program = std::move(res.program);
      resp.units.push_back(std::move(unit));
    }
    resp.ok = true;
  } catch (const jit::CompileError& e) {
    resp.ok = false;
    resp.error = e.what();
  }
  compile_cache_[key] = resp;
  return resp;
}

const MobileStatus* Server::status_of(std::uint32_t client_id) const {
  const auto it = status_.find(client_id);
  return it == status_.end() ? nullptr : &it->second;
}

}  // namespace javelin::rt
