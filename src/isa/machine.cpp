#include "isa/machine.hpp"

#include "support/units.hpp"

namespace javelin::isa {

MachineConfig client_machine() {
  MachineConfig m;
  m.name = "microSPARC-IIep-client";
  m.clock_hz = MHz(100);
  m.icache = {16 * 1024, 32};
  m.dcache = {8 * 1024, 32};
  m.miss_penalty_cycles = 20;
  // Average active power ~ mean instruction energy (3.5 nJ) * 100 MIPS.
  m.normal_power_w = 0.35;
  m.leakage_fraction = 0.10;
  return m;
}

MachineConfig server_machine() {
  MachineConfig m;
  m.name = "sparc-server";
  m.clock_hz = MHz(750);
  // Workstation-class caches; exact sizes are irrelevant for client energy,
  // they only affect the server-side execution-time estimate.
  m.icache = {64 * 1024, 32};
  m.dcache = {64 * 1024, 32};
  m.miss_penalty_cycles = 30;
  m.normal_power_w = 12.0;
  m.leakage_fraction = 0.10;
  return m;
}

}  // namespace javelin::isa
