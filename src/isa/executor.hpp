// Simulated execution of native programs.
//
// The NativeExecutor interprets a NativeProgram against the shared Core state
// (arena + caches + energy meter + cycle counter). Calls, allocations and
// virtual dispatch escape to a RuntimeBridge supplied by the VM layer, which
// keeps this module free of any dependency on the JVM.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "isa/machine.hpp"
#include "isa/nisa.hpp"

namespace javelin::isa {

struct NativeStream;

/// Host-side native dispatch flavor. Simulated costs are identical across
/// all three (tests/dispatch_differential_test.cpp pins it); only host
/// throughput differs.
enum class NExecMode : std::uint8_t {
  kSwitch = 0,  ///< Portable switch loop (always compiled).
  kGoto = 1,    ///< Threaded computed-goto loop (falls back to switch when
                ///< the compiler lacks &&label support).
  kFused = 2,   ///< Pre-decoded fused superinstruction stream (isa/nstream).
};

const char* nexec_mode_name(NExecMode m);

/// Resolve the process-wide default from JAVELIN_NEXEC
/// ("switch" | "goto" | "fused"); unset or unrecognized → kFused.
NExecMode default_nexec_mode();

/// Dynamic adjacent-pair execution counts over the native ISA, collected by
/// NativeExecutor::run_switch when profiling (corpus-frequency fusion:
/// sim/pairprof.cpp ranks these to derive the committed fusion table).
struct NPairCounts {
  std::array<std::uint64_t, kNumNOps * kNumNOps> counts{};
  void note(NOp a, NOp b) {
    ++counts[static_cast<std::size_t>(a) * kNumNOps +
             static_cast<std::size_t>(b)];
  }
  std::uint64_t of(NOp a, NOp b) const {
    return counts[static_cast<std::size_t>(a) * kNumNOps +
                  static_cast<std::size_t>(b)];
  }
};

/// Shared simulated-CPU state. One Core per device; executors (one per
/// native frame) and the bytecode interpreter all charge cycles and energy
/// here so a device has a single coherent timeline.
struct Core {
  const MachineConfig* cfg = nullptr;
  mem::Arena* arena = nullptr;
  mem::MemoryHierarchy* hier = nullptr;
  energy::EnergyMeter* meter = nullptr;

  std::uint64_t cycles = 0;
  int call_depth = 0;

  /// Abort runaway guest programs (tests/benches set this much lower).
  std::uint64_t step_limit = 50'000'000'000ULL;
  std::uint64_t steps = 0;

  static constexpr int kMaxCallDepth = 512;

  double seconds() const { return cfg->seconds_for_cycles(cycles); }

  void charge(NOp op) {
    meter->add_instr(instr_class_of(op), cfg->energy);
    ++cycles;
    if (++steps > step_limit)
      throw VmError("core: step limit exceeded (runaway guest program?)");
  }
  void charge_class(energy::InstrClass c, std::uint64_t n = 1) {
    for (std::uint64_t i = 0; i < n; ++i) meter->add_instr(c, cfg->energy);
    cycles += n;
    steps += n;
    if (steps > step_limit)
      throw VmError("core: step limit exceeded (runaway guest program?)");
  }
  void stall(std::uint64_t c) { cycles += c; }
};

class NativeExecutor;

/// Callbacks from native code into the runtime (method calls, allocation).
class RuntimeBridge {
 public:
  virtual ~RuntimeBridge() = default;

  /// Static call: invoke method `method_id`; arguments are in the caller's
  /// r1../f1.. registers, result must be written back to r1 or f1.
  virtual void call_static(std::int32_t method_id, NativeExecutor& caller) = 0;

  /// Virtual call: `declared_method_id` names the statically-resolved method;
  /// the receiver (r1) determines the actual target.
  virtual void call_virtual(std::int32_t declared_method_id,
                            NativeExecutor& caller) = 0;

  /// Allocate an array (element kind as in jvm::TypeKind); returns address.
  virtual mem::Addr new_array(std::int32_t elem_kind, std::int32_t length) = 0;

  /// Allocate an object of class `class_id`; returns address.
  virtual mem::Addr new_object(std::int32_t class_id) = 0;
};

/// Interprets one native frame.
class NativeExecutor {
 public:
  NativeExecutor(Core& core, RuntimeBridge& bridge)
      : core_(core), bridge_(bridge) {}

  /// Execute `prog` to completion (kRet or fall off the end). Arguments must
  /// have been placed in the argument registers by the caller (see
  /// set_int_arg / set_fp_arg). Traps raise VmError. Threaded computed-goto
  /// dispatch where the compiler supports it, else the switch loop.
  void run(const NativeProgram& prog);

  /// The portable switch flavor, always compiled (the differential test
  /// compares it against the threaded and fused flavors at runtime). When
  /// `pairs` is non-null, dynamic adjacent-pair frequencies are recorded —
  /// the profiling mode that seeds the fusion tables; the plain and fused
  /// paths carry no per-instruction hook.
  void run_switch(const NativeProgram& prog, NPairCounts* pairs = nullptr);

  /// The fused superinstruction flavor: executes the pre-decoded stream
  /// built by isa::build_native_stream for `prog` (isa/executor_stream.cpp).
  /// Bit-identical simulated state to run()/run_switch() by construction —
  /// every constituent replays its exact fetch/charge/execute sequence.
  void run_stream(const NativeProgram& prog, const NativeStream& stream);

  // Register file access (used by the bridge for argument/result marshaling).
  std::int64_t int_reg(std::uint8_t r) const { return r == 0 ? 0 : iregs_[r]; }
  void set_int_reg(std::uint8_t r, std::int64_t v) {
    if (r != 0) iregs_[r] = v;
  }
  double fp_reg(std::uint8_t r) const { return r == 0 ? 0.0 : fregs_[r]; }
  void set_fp_reg(std::uint8_t r, double v) {
    if (r != 0) fregs_[r] = v;
  }

  Core& core() { return core_; }

 private:
  void run_impl(const NativeProgram& prog, bool threaded, NPairCounts* pairs);

  Core& core_;
  RuntimeBridge& bridge_;
  std::int64_t iregs_[kNumIntRegs]{};
  double fregs_[kNumFpRegs]{};
};

}  // namespace javelin::isa
