// The native-opcode specification table: the single source of truth for
// nisa semantics metadata, mirroring jvm/opspec.hpp for the bytecode ISA.
//
// Every consumer of per-nisa-opcode knowledge derives from the X-macro list
// in this header rather than maintaining its own switch:
//  * isa/nisa.cpp          — nop_name() reads the mnemonic column;
//  * isa/executor.cpp      — the switch and computed-goto flavors stamp their
//                            dispatch tables over this list, so a missing
//                            handler is a compile error;
//  * isa/executor_stream.cpp / isa/nstream.cpp
//                          — the fused native stream tier derives fusion
//                            legality, branch-target remapping and operand
//                            pre-resolution from the operand/flag columns;
//  * analysis/wcec.cpp, analysis/cost.cpp
//                          — consume instr_class_of, which a constexpr check
//                            below pins to the table's class column.
// tests/nspec_test.cpp asserts the runtime views agree (mnemonics, classes,
// charge tables), so executor semantics can never drift from the table.
//
// Columns of JAVELIN_NOP_SPEC_LIST(X):
//   X(Name, mnemonic, Category, OperandKind, Class, flags)
//     Name        isa::NOp::k##Name
//     mnemonic    disassembly name (nop_name)
//     Category    semantic family (NCategory) — drives fusion legality
//     OperandKind meaning of NInstr::imm (NOperandKind) — drives the stream
//                 builder's branch-target remapping
//     Class       energy::InstrClass charged per execution (Fig 1 class);
//                 constexpr-checked against instr_class_of below
//     flags       bitwise-or of NFlags
#pragma once

#include <cstdint>

#include "energy/energy.hpp"
#include "isa/nisa.hpp"

namespace javelin::isa::nspec {

/// Semantic family of a native opcode.
enum class NCategory : std::uint8_t {
  kMemLoad,     ///< data load through the D-cache
  kMemStore,    ///< data store through the D-cache
  kAluSimple,   ///< one-cycle integer ALU / register move
  kAluComplex,  ///< multi-cycle ALU (mul/div/FP/convert/compare)
  kCondBranch,  ///< conditional branch on two integer registers
  kJump,        ///< unconditional jump
  kCall,        ///< static or virtual call through the runtime bridge
  kReturn,      ///< method return
  kTrap,        ///< guest fault (always throws)
  kAlloc,       ///< runtime allocation through the bridge
  kIntrinsic,   ///< math intrinsic (variable extra charge loop)
  kNop,
};

/// What NInstr::imm means for an opcode.
enum class NOperandKind : std::uint8_t {
  kNone,          ///< unused
  kImm,           ///< immediate int operand
  kOffset,        ///< memory displacement added to R[ra] + R[rb]
  kBranchTarget,  ///< instruction index (the stream builder remaps these)
  kMethodId,      ///< callee / declared method id
  kTrapCode,      ///< isa::TrapCode
  kElemKind,      ///< jvm::TypeKind of array elements
  kClassId,       ///< runtime class id
  kIntrinsicId,   ///< isa::Intrinsic id
};

enum NFlags : std::uint8_t {
  kFlagNone = 0,
  /// `imm` is a branch target; pass 1/3 of the stream builder track it.
  kFlagBranch = 1 << 0,
  /// Escapes to the RuntimeBridge: the executor must flush its register-
  /// cached core state around the handler and reset the fetch-line memo.
  kFlagBridge = 1 << 1,
  /// May transfer control (set `next` to other than pc + 1).
  kFlagCtrl = 1 << 2,
  /// Handler can raise VmError itself (div-by-zero, trap).
  kFlagThrows = 1 << 3,
};

struct NSpec {
  NOp op = NOp::kNop;
  const char* mnemonic = "?";
  NCategory category = NCategory::kNop;
  NOperandKind operand = NOperandKind::kNone;
  energy::InstrClass cls = energy::InstrClass::kNop;
  std::uint8_t flags = kFlagNone;
};

// clang-format off
#define JAVELIN_NOP_SPEC_LIST(X)                                                             \
  X(Ldw,      "ldw",       kMemLoad,    kOffset,       kLoad,       kFlagNone)               \
  X(Ldb,      "ldb",       kMemLoad,    kOffset,       kLoad,       kFlagNone)               \
  X(Ldd,      "ldd",       kMemLoad,    kOffset,       kLoad,       kFlagNone)               \
  X(Stw,      "stw",       kMemStore,   kOffset,       kStore,      kFlagNone)               \
  X(Stb,      "stb",       kMemStore,   kOffset,       kStore,      kFlagNone)               \
  X(Std,      "std",       kMemStore,   kOffset,       kStore,      kFlagNone)               \
  X(Add,      "add",       kAluSimple,  kNone,         kAluSimple,  kFlagNone)               \
  X(Sub,      "sub",       kAluSimple,  kNone,         kAluSimple,  kFlagNone)               \
  X(And,      "and",       kAluSimple,  kNone,         kAluSimple,  kFlagNone)               \
  X(Or,       "or",        kAluSimple,  kNone,         kAluSimple,  kFlagNone)               \
  X(Xor,      "xor",       kAluSimple,  kNone,         kAluSimple,  kFlagNone)               \
  X(Shl,      "shl",       kAluSimple,  kNone,         kAluSimple,  kFlagNone)               \
  X(Shr,      "shr",       kAluSimple,  kNone,         kAluSimple,  kFlagNone)               \
  X(Shru,     "shru",      kAluSimple,  kNone,         kAluSimple,  kFlagNone)               \
  X(Addi,     "addi",      kAluSimple,  kImm,          kAluSimple,  kFlagNone)               \
  X(Andi,     "andi",      kAluSimple,  kImm,          kAluSimple,  kFlagNone)               \
  X(Ori,      "ori",       kAluSimple,  kImm,          kAluSimple,  kFlagNone)               \
  X(Xori,     "xori",      kAluSimple,  kImm,          kAluSimple,  kFlagNone)               \
  X(Shli,     "shli",      kAluSimple,  kImm,          kAluSimple,  kFlagNone)               \
  X(Shri,     "shri",      kAluSimple,  kImm,          kAluSimple,  kFlagNone)               \
  X(Shrui,    "shrui",     kAluSimple,  kImm,          kAluSimple,  kFlagNone)               \
  X(Movi,     "movi",      kAluSimple,  kImm,          kAluSimple,  kFlagNone)               \
  X(Mov,      "mov",       kAluSimple,  kNone,         kAluSimple,  kFlagNone)               \
  X(Fmov,     "fmov",      kAluSimple,  kNone,         kAluSimple,  kFlagNone)               \
  X(Mul,      "mul",       kAluComplex, kNone,         kAluComplex, kFlagNone)               \
  X(Div,      "div",       kAluComplex, kNone,         kAluComplex, kFlagThrows)             \
  X(Rem,      "rem",       kAluComplex, kNone,         kAluComplex, kFlagThrows)             \
  X(Fadd,     "fadd",      kAluComplex, kNone,         kAluComplex, kFlagNone)               \
  X(Fsub,     "fsub",      kAluComplex, kNone,         kAluComplex, kFlagNone)               \
  X(Fmul,     "fmul",      kAluComplex, kNone,         kAluComplex, kFlagNone)               \
  X(Fdiv,     "fdiv",      kAluComplex, kNone,         kAluComplex, kFlagNone)               \
  X(Fneg,     "fneg",      kAluComplex, kNone,         kAluComplex, kFlagNone)               \
  X(I2d,      "i2d",       kAluComplex, kNone,         kAluComplex, kFlagNone)               \
  X(D2i,      "d2i",       kAluComplex, kNone,         kAluComplex, kFlagNone)               \
  X(Fcmp,     "fcmp",      kAluComplex, kNone,         kAluComplex, kFlagNone)               \
  X(Beq,      "beq",       kCondBranch, kBranchTarget, kBranch,     kFlagBranch | kFlagCtrl) \
  X(Bne,      "bne",       kCondBranch, kBranchTarget, kBranch,     kFlagBranch | kFlagCtrl) \
  X(Blt,      "blt",       kCondBranch, kBranchTarget, kBranch,     kFlagBranch | kFlagCtrl) \
  X(Ble,      "ble",       kCondBranch, kBranchTarget, kBranch,     kFlagBranch | kFlagCtrl) \
  X(Bgt,      "bgt",       kCondBranch, kBranchTarget, kBranch,     kFlagBranch | kFlagCtrl) \
  X(Bge,      "bge",       kCondBranch, kBranchTarget, kBranch,     kFlagBranch | kFlagCtrl) \
  X(Jmp,      "jmp",       kJump,       kBranchTarget, kBranch,     kFlagBranch | kFlagCtrl) \
  X(Call,     "call",      kCall,       kMethodId,     kBranch,     kFlagBridge)             \
  X(Callv,    "callv",     kCall,       kMethodId,     kBranch,     kFlagBridge)             \
  X(Ret,      "ret",       kReturn,     kNone,         kBranch,     kFlagCtrl)               \
  X(Trap,     "trap",      kTrap,       kTrapCode,     kBranch,     kFlagCtrl | kFlagThrows) \
  X(RtNewArr, "rt.newarr", kAlloc,      kElemKind,     kBranch,     kFlagBridge)             \
  X(RtNewObj, "rt.newobj", kAlloc,      kClassId,      kBranch,     kFlagBridge)             \
  X(IntrI,    "intr.i",    kIntrinsic,  kIntrinsicId,  kAluComplex, kFlagNone)               \
  X(IntrD,    "intr.d",    kIntrinsic,  kIntrinsicId,  kAluComplex, kFlagNone)               \
  X(Nop,      "nop",       kNop,        kNone,         kNop,        kFlagNone)
// clang-format on

/// The table, indexed by static_cast<std::size_t>(NOp). Built entirely at
/// compile time from JAVELIN_NOP_SPEC_LIST.
inline constexpr NSpec kTable[kNumNOps] = {
#define JAVELIN_NSPEC_ROW(Name, mnem, cat, opnd, cls, flg)         \
  NSpec{NOp::k##Name,     mnem,                                    \
        NCategory::cat,   NOperandKind::opnd,                      \
        energy::InstrClass::cls, std::uint8_t{flg}},
    JAVELIN_NOP_SPEC_LIST(JAVELIN_NSPEC_ROW)
#undef JAVELIN_NSPEC_ROW
};

// Coverage: one row per enum member. A new NOp without a table row fails to
// compile here, not at runtime.
#define JAVELIN_NSPEC_COUNT(Name, mnem, cat, opnd, cls, flg) +1
static_assert(0 JAVELIN_NOP_SPEC_LIST(JAVELIN_NSPEC_COUNT) == kNumNOps,
              "nspec: JAVELIN_NOP_SPEC_LIST must cover every isa::NOp "
              "exactly once");
#undef JAVELIN_NSPEC_COUNT

constexpr const NSpec& spec(NOp op) {
  return kTable[static_cast<std::size_t>(op)];
}

// Rows must appear in NOp enum order (the executor's label tables are
// generated from the list and indexed by the raw opcode value), and the
// class column must agree with the hot-path instr_class_of switch — both
// checked at compile time.
constexpr bool nspec_rows_in_enum_order() {
  for (std::size_t i = 0; i < kNumNOps; ++i)
    if (static_cast<std::size_t>(kTable[i].op) != i) return false;
  return true;
}
static_assert(nspec_rows_in_enum_order(),
              "nspec: table rows out of NOp enum order");
constexpr bool nspec_classes_match_instr_class_of() {
  for (std::size_t i = 0; i < kNumNOps; ++i)
    if (kTable[i].cls != instr_class_of(kTable[i].op)) return false;
  return true;
}
static_assert(nspec_classes_match_instr_class_of(),
              "nspec: class column disagrees with instr_class_of");

// ---- derived predicates (stream builder, fusion legality, tests) -----------

/// `imm` is a branch target (instruction index before stream remapping).
constexpr bool uses_branch_target(NOp op) {
  return (spec(op).flags & kFlagBranch) != 0;
}

/// Escapes to the RuntimeBridge (flush/reload + fetch-line memo reset).
constexpr bool is_bridge(NOp op) { return (spec(op).flags & kFlagBridge) != 0; }

/// May set `next` to something other than fall-through.
constexpr bool transfers_control(NOp op) {
  return (spec(op).flags & kFlagCtrl) != 0;
}

constexpr bool is_cond_branch(NOp op) {
  return spec(op).category == NCategory::kCondBranch;
}

/// Eligible as the *first* constituent of a fused pair with unconditional
/// fall-through into the second: straight-line, non-bridge, non-intrinsic
/// ops. Conditional branches are also fusable as firsts, but through the
/// dedicated branch-first handler shape (the second constituent only
/// executes on fall-through); they are excluded here.
constexpr bool fusable_first(NOp op) {
  const NCategory c = spec(op).category;
  return (c == NCategory::kMemLoad || c == NCategory::kMemStore ||
          c == NCategory::kAluSimple || c == NCategory::kAluComplex) &&
         (spec(op).flags & (kFlagBridge | kFlagCtrl)) == 0;
}

/// Eligible as the *second* constituent: anything whose handler body neither
/// escapes to the bridge nor runs the intrinsic extra-charge loop. Control
/// transfers (cond branches, jmp, ret) are fine — their `next` assignment
/// composes with the fused dispatch exactly as in the plain loop. Traps are
/// legal in principle (the charge replay happens before the throw) but are
/// cold by construction, so they are left out of the fusable set.
constexpr bool fusable_second(NOp op) {
  const NCategory c = spec(op).category;
  if (c == NCategory::kCall || c == NCategory::kAlloc ||
      c == NCategory::kIntrinsic || c == NCategory::kTrap) return false;
  return (spec(op).flags & kFlagBridge) == 0;
}

/// An admissible profile-derived fused pair: plain first + any second, or a
/// conditional branch first (branch-first shape) + any second.
constexpr bool fusable_pair_legal(NOp a, NOp b) {
  return (fusable_first(a) || is_cond_branch(a)) && fusable_second(b);
}

/// True when the op writes an *integer* destination register (used by the
/// stream builder to prove r27, the literal-pool base, is never clobbered
/// before pre-resolving pool operands; FP writes land in the FP file and
/// cannot touch it).
constexpr bool writes_int_rd(NOp op) {
  switch (spec(op).category) {
    case NCategory::kMemLoad:
      return op != NOp::kLdd;
    case NCategory::kAluSimple:
      return op != NOp::kFmov;
    case NCategory::kAluComplex:
      return op == NOp::kMul || op == NOp::kDiv || op == NOp::kRem ||
             op == NOp::kD2i || op == NOp::kFcmp;
    case NCategory::kAlloc:
      return true;
    case NCategory::kIntrinsic:
      return op == NOp::kIntrI;
    default:
      return false;
  }
}

}  // namespace javelin::isa::nspec
