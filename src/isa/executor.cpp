#include "isa/executor.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "isa/nspec.hpp"

// Threaded dispatch needs the GNU &&label extension (GCC/Clang); elsewhere
// the portable switch flavor below is compiled instead. Same convention as
// the bytecode interpreter (jvm/interp.cpp).
#if defined(__GNUC__) || defined(__clang__)
#define JAVELIN_NEXEC_HAVE_COMPUTED_GOTO 1
#else
#define JAVELIN_NEXEC_HAVE_COMPUTED_GOTO 0
#endif

namespace javelin::isa {

const char* nexec_mode_name(NExecMode m) {
  switch (m) {
    case NExecMode::kSwitch: return "switch";
    case NExecMode::kGoto: return "goto";
    case NExecMode::kFused: return "fused";
  }
  return "?";
}

NExecMode default_nexec_mode() {
  if (const char* e = std::getenv("JAVELIN_NEXEC")) {
    if (std::strcmp(e, "switch") == 0) return NExecMode::kSwitch;
    if (std::strcmp(e, "goto") == 0) return NExecMode::kGoto;
    if (std::strcmp(e, "fused") == 0) return NExecMode::kFused;
  }
  return NExecMode::kFused;
}

// The hot loop host-optimizes four things without changing one bit of
// simulated state (the dispatch differential test and the golden bench
// outputs pin this):
//
//  1. Core counters (cycles, steps) and the meter's core-energy accumulator
//     live in locals — registers — for the duration of straight-line
//     execution. They are flushed back before anything that can observe the
//     Core or the meter (bridge escapes, exceptions, loop exit) and reloaded
//     after a bridge call may have advanced them. Every energy addition
//     still lands on the same running sum in the same order, so the rounding
//     is identical to per-instruction add_instr() calls.
//
//  2. Instruction fetch memoizes the current cache line: a fetch from the
//     same line as the previous fetch, with no intervening icache access
//     (only nested native frames reached through the bridge touch the
//     icache), is a guaranteed hit whose only architectural effect is the
//     hit counter — so the tag lookup is skipped. Bridge escapes reset the
//     memo.
//
//  3. Register-file access is branch-free: reads index the file directly
//     (the invariant iregs_[0] == 0 / fregs_[0] == 0.0 is maintained by
//     re-zeroing slot 0 after every write, MIPS-$zero style) instead of
//     testing every operand for the hardwired zero register.
//
//  4. On GCC/Clang, dispatch is threaded: every handler ends in its own
//     indirect jump through the label table, so the branch predictor can
//     learn per-pair opcode transitions instead of funneling every
//     instruction through one switch dispatch site. Handler bodies are
//     shared with the portable switch flavor via executor_ops.inc, and both
//     dispatch tables are stamped from the nspec X-macro (isa/nspec.hpp),
//     whose enum-order static_assert pins the indexing.
//
// A third flavor — the fused superinstruction stream — lives in
// executor_stream.cpp; isa::NExecMode selects between them at the engine.
void NativeExecutor::run(const NativeProgram& prog) {
  run_impl(prog, /*threaded=*/true, nullptr);
}

void NativeExecutor::run_switch(const NativeProgram& prog, NPairCounts* pairs) {
  run_impl(prog, /*threaded=*/false, pairs);
}

void NativeExecutor::run_impl(const NativeProgram& prog, bool threaded,
                              NPairCounts* pairs) {
#if !JAVELIN_NEXEC_HAVE_COMPUTED_GOTO
  threaded = false;
#endif
  if (!prog.installed())
    throw Error("executor: program not installed in simulated memory");
  Core& c = core_;
  if (++c.call_depth > Core::kMaxCallDepth) {
    --c.call_depth;
    throw VmError("executor: native call depth exceeded");
  }
  // Frame for spills, allocated stack-style.
  const std::size_t frame_mark = c.arena->stack_mark();
  mem::Addr frame = mem::kNullAddr;
  if (prog.spill_bytes > 0) frame = c.arena->alloc_stack(prog.spill_bytes, 8);
  iregs_[kFrameReg] = frame;
  iregs_[kLiteralBaseReg] = prog.literal_base;

  const auto i32 = [](std::int64_t v) { return static_cast<std::int32_t>(v); };
  std::size_t pc = 0;
  std::size_t next = 0;
  const std::size_t n = prog.code.size();
  const NInstr* const code = prog.code.data();
  const NInstr* in_p = nullptr;
  const mem::Addr code_base = prog.code_base;

  mem::MemoryHierarchy& hier = *c.hier;
  mem::DirectMappedCache& icache = hier.icache();
  mem::Arena& arena = *c.arena;
  const energy::InstructionEnergyTable& et = c.cfg->energy;
  energy::InstrCounts& counts = c.meter->counts_mut();
  double& core_slot = c.meter->core_joules_ref();
  const std::uint64_t step_limit = c.step_limit;

  // Register-cached core state; see the flush/reload contract above.
  // `cached` makes flush() safe on every unwind path: if a bridge callee
  // throws after we flushed, the catch-all below must not overwrite the
  // callee's progress with our stale locals.
  std::uint64_t cycles = c.cycles;
  std::uint64_t steps = c.steps;
  double core_j = core_slot;
  bool cached = true;
  const auto flush = [&] {
    if (cached) {
      c.cycles = cycles;
      c.steps = steps;
      core_slot = core_j;
      cached = false;
    }
  };
  const auto reload = [&] {
    cycles = c.cycles;
    steps = c.steps;
    core_j = core_slot;
    cached = true;
  };

  // Branch-free register writes (reads are raw iregs_/fregs_ indexing).
  const auto wr_i = [&](std::uint8_t rd, std::int64_t v) {
    iregs_[rd] = v;
    iregs_[0] = 0;
  };
  const auto wr_f = [&](std::uint8_t rd, double v) {
    fregs_[rd] = v;
    fregs_[0] = 0.0;
  };

  // Fetch-line memo; ~0 is "no line resident that we can prove".
  std::uint64_t cur_line = ~0ULL;

// Per-instruction fetch + charge, identical across both dispatch flavors.
// `in_p` must already point at code[pc].
#define JAVELIN_NEXEC_FETCH_CHARGE()                                          \
  do {                                                                        \
    const auto fetch_addr = code_base + static_cast<mem::Addr>(pc * 4);       \
    const std::uint64_t fetch_line = icache.line_key(fetch_addr);             \
    if (fetch_line == cur_line) {                                             \
      icache.note_repeat_read_hit();                                          \
    } else {                                                                  \
      cur_line = fetch_line;                                                  \
      cycles += hier.fetch(fetch_addr);                                       \
    }                                                                         \
    const energy::InstrClass cls = instr_class_of(in_p->op);                  \
    counts.add(cls);                                                          \
    core_j += et.of(cls);                                                     \
    ++cycles;                                                                 \
    if (++steps > step_limit)                                                 \
      throw VmError("core: step limit exceeded (runaway guest program?)");    \
  } while (0)

  try {
#if JAVELIN_NEXEC_HAVE_COMPUTED_GOTO
    if (threaded) {
      static const void* kLabels[] = {
#define JAVELIN_NLBL(Name, mnem, cat, opnd, cls, flg) &&h_##Name,
          JAVELIN_NOP_SPEC_LIST(JAVELIN_NLBL)
#undef JAVELIN_NLBL
      };
      static_assert(sizeof(kLabels) / sizeof(kLabels[0]) == kNumNOps);

    dispatch:
      if (pc >= n) goto done;
      in_p = &code[pc];
      JAVELIN_NEXEC_FETCH_CHARGE();
      next = pc + 1;
      goto* kLabels[static_cast<std::size_t>(in_p->op)];

// Handlers cannot bind a reference across a goto, so `in` reads through the
// pointer set at dispatch.
#define in (*in_p)
#define JAVELIN_NH(Name) h_##Name : {
#define JAVELIN_NH_END \
  }                    \
  pc = next;           \
  goto dispatch;
#include "isa/executor_ops.inc"
#undef JAVELIN_NH
#undef JAVELIN_NH_END
#undef in

    done:;
    } else
#endif  // JAVELIN_NEXEC_HAVE_COMPUTED_GOTO
    {
      // Portable switch flavor. Also the profiling flavor: when `pairs` is
      // set, dynamically adjacent instructions (executed back-to-back with
      // pc falling through) are counted — exactly the pairs the fused
      // stream tier could have collapsed into one dispatch.
      std::size_t prev_pc = 0;
      NOp prev_op = NOp::kNop;
      bool have_prev = false;
      while (pc < n) {
        in_p = &code[pc];
        JAVELIN_NEXEC_FETCH_CHARGE();
        if (pairs) {
          if (have_prev && pc == prev_pc + 1) pairs->note(prev_op, in_p->op);
          prev_pc = pc;
          prev_op = in_p->op;
          have_prev = true;
        }
        next = pc + 1;

        switch (in_p->op) {
#define in (*in_p)
#define JAVELIN_NH(Name) case NOp::k##Name: {
#define JAVELIN_NH_END \
  }                    \
  break;
#include "isa/executor_ops.inc"
#undef JAVELIN_NH
#undef JAVELIN_NH_END
#undef in
        }

        pc = next;
      }
    }

    flush();
  } catch (...) {
    flush();
    c.arena->stack_release(frame_mark);
    --c.call_depth;
    throw;
  }
  c.arena->stack_release(frame_mark);
  --c.call_depth;

#undef JAVELIN_NEXEC_FETCH_CHARGE
}

}  // namespace javelin::isa
