#include "isa/executor.hpp"

#include <cmath>

namespace javelin::isa {

namespace {

const char* trap_message(TrapCode c) {
  switch (c) {
    case TrapCode::kNullPointer: return "null pointer dereference";
    case TrapCode::kArrayBounds: return "array index out of bounds";
    case TrapCode::kDivByZero: return "division by zero";
    case TrapCode::kUnreachable: return "unreachable code reached";
  }
  return "unknown trap";
}

}  // namespace

void NativeExecutor::run(const NativeProgram& prog) {
  if (!prog.installed())
    throw Error("executor: program not installed in simulated memory");
  Core& c = core_;
  if (++c.call_depth > Core::kMaxCallDepth) {
    --c.call_depth;
    throw VmError("executor: native call depth exceeded");
  }
  // Frame for spills, allocated stack-style.
  const std::size_t frame_mark = c.arena->stack_mark();
  mem::Addr frame = mem::kNullAddr;
  if (prog.spill_bytes > 0) frame = c.arena->alloc_stack(prog.spill_bytes, 8);
  iregs_[kFrameReg] = frame;
  iregs_[kLiteralBaseReg] = prog.literal_base;

  const auto i32 = [](std::int64_t v) { return static_cast<std::int32_t>(v); };
  std::size_t pc = 0;
  const std::size_t n = prog.code.size();

  try {
    while (pc < n) {
      c.stall(c.hier->fetch(prog.code_base + static_cast<mem::Addr>(pc * 4)));
      const NInstr& in = prog.code[pc];
      c.charge(in.op);
      std::size_t next = pc + 1;

      switch (in.op) {
        case NOp::kLdw: {
          const auto addr = static_cast<mem::Addr>(
              int_reg(in.ra) + int_reg(in.rb) + in.imm);
          c.stall(c.hier->load(addr));
          set_int_reg(in.rd, c.arena->load_i32(addr));
          break;
        }
        case NOp::kLdb: {
          const auto addr = static_cast<mem::Addr>(
              int_reg(in.ra) + int_reg(in.rb) + in.imm);
          c.stall(c.hier->load(addr));
          set_int_reg(in.rd, c.arena->load_u8(addr));
          break;
        }
        case NOp::kLdd: {
          const auto addr = static_cast<mem::Addr>(
              int_reg(in.ra) + int_reg(in.rb) + in.imm);
          c.stall(c.hier->load(addr));
          set_fp_reg(in.rd, c.arena->load_f64(addr));
          break;
        }
        case NOp::kStw: {
          const auto addr = static_cast<mem::Addr>(
              int_reg(in.ra) + int_reg(in.rb) + in.imm);
          c.stall(c.hier->store(addr));
          c.arena->store_i32(addr, i32(int_reg(in.rd)));
          break;
        }
        case NOp::kStb: {
          const auto addr = static_cast<mem::Addr>(
              int_reg(in.ra) + int_reg(in.rb) + in.imm);
          c.stall(c.hier->store(addr));
          c.arena->store_u8(addr, static_cast<std::uint8_t>(int_reg(in.rd)));
          break;
        }
        case NOp::kStd: {
          const auto addr = static_cast<mem::Addr>(
              int_reg(in.ra) + int_reg(in.rb) + in.imm);
          c.stall(c.hier->store(addr));
          c.arena->store_f64(addr, fp_reg(in.rd));
          break;
        }

        case NOp::kAdd: set_int_reg(in.rd, i32(int_reg(in.ra) + int_reg(in.rb))); break;
        case NOp::kSub: set_int_reg(in.rd, i32(int_reg(in.ra) - int_reg(in.rb))); break;
        case NOp::kAnd: set_int_reg(in.rd, i32(int_reg(in.ra) & int_reg(in.rb))); break;
        case NOp::kOr: set_int_reg(in.rd, i32(int_reg(in.ra) | int_reg(in.rb))); break;
        case NOp::kXor: set_int_reg(in.rd, i32(int_reg(in.ra) ^ int_reg(in.rb))); break;
        case NOp::kShl:
          set_int_reg(in.rd, i32(i32(int_reg(in.ra)) << (int_reg(in.rb) & 31)));
          break;
        case NOp::kShr:
          set_int_reg(in.rd, i32(i32(int_reg(in.ra)) >> (int_reg(in.rb) & 31)));
          break;
        case NOp::kShru:
          set_int_reg(in.rd,
                      i32(static_cast<std::uint32_t>(int_reg(in.ra)) >>
                          (int_reg(in.rb) & 31)));
          break;
        case NOp::kAddi: set_int_reg(in.rd, i32(int_reg(in.ra) + in.imm)); break;
        case NOp::kAndi: set_int_reg(in.rd, i32(int_reg(in.ra) & in.imm)); break;
        case NOp::kOri: set_int_reg(in.rd, i32(int_reg(in.ra) | in.imm)); break;
        case NOp::kXori: set_int_reg(in.rd, i32(int_reg(in.ra) ^ in.imm)); break;
        case NOp::kShli:
          set_int_reg(in.rd, i32(i32(int_reg(in.ra)) << (in.imm & 31)));
          break;
        case NOp::kShri:
          set_int_reg(in.rd, i32(i32(int_reg(in.ra)) >> (in.imm & 31)));
          break;
        case NOp::kShrui:
          set_int_reg(in.rd,
                      i32(static_cast<std::uint32_t>(int_reg(in.ra)) >>
                          (in.imm & 31)));
          break;
        case NOp::kMovi: set_int_reg(in.rd, in.imm); break;
        case NOp::kMov: set_int_reg(in.rd, int_reg(in.ra)); break;
        case NOp::kFmov: set_fp_reg(in.rd, fp_reg(in.ra)); break;

        case NOp::kMul: set_int_reg(in.rd, i32(int_reg(in.ra) * int_reg(in.rb))); break;
        case NOp::kDiv: {
          const auto d = i32(int_reg(in.rb));
          if (d == 0) throw VmError(trap_message(TrapCode::kDivByZero));
          set_int_reg(in.rd, i32(i32(int_reg(in.ra)) / d));
          break;
        }
        case NOp::kRem: {
          const auto d = i32(int_reg(in.rb));
          if (d == 0) throw VmError(trap_message(TrapCode::kDivByZero));
          set_int_reg(in.rd, i32(i32(int_reg(in.ra)) % d));
          break;
        }
        case NOp::kFadd: set_fp_reg(in.rd, fp_reg(in.ra) + fp_reg(in.rb)); break;
        case NOp::kFsub: set_fp_reg(in.rd, fp_reg(in.ra) - fp_reg(in.rb)); break;
        case NOp::kFmul: set_fp_reg(in.rd, fp_reg(in.ra) * fp_reg(in.rb)); break;
        case NOp::kFdiv: set_fp_reg(in.rd, fp_reg(in.ra) / fp_reg(in.rb)); break;
        case NOp::kFneg: set_fp_reg(in.rd, -fp_reg(in.ra)); break;
        case NOp::kI2d:
          set_fp_reg(in.rd, static_cast<double>(i32(int_reg(in.ra))));
          break;
        case NOp::kD2i:
          set_int_reg(in.rd, static_cast<std::int32_t>(fp_reg(in.ra)));
          break;
        case NOp::kFcmp: {
          const double a = fp_reg(in.ra), b = fp_reg(in.rb);
          set_int_reg(in.rd, a > b ? 1 : (a == b ? 0 : -1));
          break;
        }

        case NOp::kBeq:
          if (i32(int_reg(in.ra)) == i32(int_reg(in.rb))) next = in.imm;
          break;
        case NOp::kBne:
          if (i32(int_reg(in.ra)) != i32(int_reg(in.rb))) next = in.imm;
          break;
        case NOp::kBlt:
          if (i32(int_reg(in.ra)) < i32(int_reg(in.rb))) next = in.imm;
          break;
        case NOp::kBle:
          if (i32(int_reg(in.ra)) <= i32(int_reg(in.rb))) next = in.imm;
          break;
        case NOp::kBgt:
          if (i32(int_reg(in.ra)) > i32(int_reg(in.rb))) next = in.imm;
          break;
        case NOp::kBge:
          if (i32(int_reg(in.ra)) >= i32(int_reg(in.rb))) next = in.imm;
          break;
        case NOp::kJmp: next = in.imm; break;

        case NOp::kCall:
          bridge_.call_static(in.imm, *this);
          break;
        case NOp::kCallv:
          bridge_.call_virtual(in.imm, *this);
          break;
        case NOp::kRet: next = n; break;
        case NOp::kTrap:
          throw VmError(trap_message(static_cast<TrapCode>(in.imm)));

        case NOp::kRtNewArr:
          set_int_reg(in.rd, bridge_.new_array(in.imm, i32(int_reg(in.ra))));
          break;
        case NOp::kRtNewObj:
          set_int_reg(in.rd, bridge_.new_object(in.imm));
          break;

        case NOp::kIntrI: {
          const auto id = static_cast<Intrinsic>(in.imm);
          c.charge_class(energy::InstrClass::kAluComplex, intrinsic_cost(id) - 1);
          const std::int32_t ints[2] = {static_cast<std::int32_t>(iregs_[1]),
                                        static_cast<std::int32_t>(iregs_[2])};
          set_int_reg(in.rd, apply_intrinsic_i(id, ints));
          break;
        }
        case NOp::kIntrD: {
          const auto id = static_cast<Intrinsic>(in.imm);
          c.charge_class(energy::InstrClass::kAluComplex, intrinsic_cost(id) - 1);
          const double fps[2] = {fregs_[1], fregs_[2]};
          const std::int32_t ints[2] = {static_cast<std::int32_t>(iregs_[1]),
                                        static_cast<std::int32_t>(iregs_[2])};
          set_fp_reg(in.rd, apply_intrinsic_d(id, fps, ints));
          break;
        }

        case NOp::kNop: break;
      }
      pc = next;
    }
  } catch (...) {
    c.arena->stack_release(frame_mark);
    --c.call_depth;
    throw;
  }
  c.arena->stack_release(frame_mark);
  --c.call_depth;
}

}  // namespace javelin::isa
