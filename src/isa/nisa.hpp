// The simulated native instruction set (the JIT's target).
//
// A RISC register machine in the spirit of SPARC v8: 32 integer registers
// (r0 hardwired to zero), 16 double-precision FP registers, load/store
// architecture, and a small set of runtime pseudo-ops (allocation, calls,
// math intrinsics) that trap to the runtime bridge. The executor interprets
// this ISA while counting instructions by energy class and routing every
// instruction fetch and data access through the cache model — energy and
// timing are *measured* from real executions, not estimated.
//
// Register conventions (fixed by the ABI shared between codegen and executor):
//   r0          always zero
//   r1..r8      integer/reference argument & return registers, caller-saved
//   r9..r26     allocatable temporaries
//   r27         literal-pool base (set by the executor at method entry)
//   r28         frame pointer (spill area base)
//   r29..r31    codegen scratch (address computation, spill reloads)
//   f0          always +0.0
//   f1..f8      FP argument & return registers
//   f9..f13     allocatable FP temporaries
//   f14..f15    codegen scratch
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "energy/energy.hpp"
#include "mem/arena.hpp"

namespace javelin::isa {

inline constexpr std::uint8_t kZeroReg = 0;
inline constexpr std::uint8_t kFirstArgReg = 1;
inline constexpr std::uint8_t kNumArgRegs = 8;
inline constexpr std::uint8_t kRetReg = 1;
inline constexpr std::uint8_t kFirstTempReg = 9;
inline constexpr std::uint8_t kLastTempReg = 26;
inline constexpr std::uint8_t kLiteralBaseReg = 27;
inline constexpr std::uint8_t kFrameReg = 28;
inline constexpr std::uint8_t kScratch0 = 29;
inline constexpr std::uint8_t kScratch1 = 30;
inline constexpr std::uint8_t kScratch2 = 31;
inline constexpr std::uint8_t kNumIntRegs = 32;

inline constexpr std::uint8_t kFZeroReg = 0;
inline constexpr std::uint8_t kFFirstArgReg = 1;
inline constexpr std::uint8_t kFRetReg = 1;
inline constexpr std::uint8_t kFFirstTempReg = 9;
inline constexpr std::uint8_t kFLastTempReg = 13;
inline constexpr std::uint8_t kFScratch0 = 14;
inline constexpr std::uint8_t kFScratch1 = 15;
inline constexpr std::uint8_t kNumFpRegs = 16;

/// Native opcodes. `rd/ra/rb` meanings per-op; `imm` is a 32-bit immediate,
/// branch target (instruction index), callee method id, or intrinsic id.
enum class NOp : std::uint8_t {
  // Memory. Effective address = R[ra] + R[rb] + imm.
  kLdw,   ///< rd <- sign-extended 32-bit load
  kLdb,   ///< rd <- zero-extended 8-bit load
  kLdd,   ///< fd <- 64-bit FP load
  kStw,   ///< 32-bit store of R[rd]
  kStb,   ///< 8-bit store of R[rd]
  kStd,   ///< 64-bit FP store of F[rd]

  // Simple ALU (one cycle, "ALU simple" energy class).
  kAdd, kSub, kAnd, kOr, kXor, kShl, kShr, kShru,
  kAddi, kAndi, kOri, kXori, kShli, kShri, kShrui,
  kMovi,  ///< rd <- imm
  kMov,   ///< rd <- R[ra]
  kFmov,  ///< fd <- F[fa]

  // Complex ALU ("ALU complex" energy class).
  kMul, kDiv, kRem,
  kFadd, kFsub, kFmul, kFdiv, kFneg,
  kI2d,   ///< fd <- double(R[ra])
  kD2i,   ///< rd <- int32(trunc(F[fa]))
  kFcmp,  ///< rd <- -1/0/+1 comparing F[fa], F[fb] (NaN compares as -1)

  // Control transfer (branch energy class). Branch targets in imm.
  kBeq, kBne, kBlt, kBle, kBgt, kBge,  ///< compare R[ra], R[rb]
  kJmp,
  kCall,   ///< imm = static callee method id; args in r1../f1..
  kCallv,  ///< imm = declared method id; receiver in r1, re-resolved by class
  kRet,    ///< return; result already in r1 / f1
  kTrap,   ///< raise guest fault; imm = TrapCode

  // Runtime pseudo-ops (allocation; charged as a call plus runtime work).
  kRtNewArr,  ///< rd <- new array; R[ra] = length, imm = element kind
  kRtNewObj,  ///< rd <- new object; imm = class id

  // Math intrinsics; operands in r1../f1.. by convention, result in rd/fd.
  kIntrI,  ///< integer-result intrinsic, imm = Intrinsic id
  kIntrD,  ///< double-result intrinsic, imm = Intrinsic id

  kNop,
};

inline constexpr std::size_t kNumNOps = static_cast<std::size_t>(NOp::kNop) + 1;

/// Disassembly mnemonic, from the nspec table's mnemonic column (isa/nspec.hpp
/// is the single source of truth for per-opcode metadata).
const char* nop_name(NOp op);

/// Map an opcode to the Fig 1 energy class. Constexpr-inline: Core::charge
/// calls this once per executed native instruction, so an out-of-line call
/// here was pure dispatch overhead on the executor's hottest path.
constexpr energy::InstrClass instr_class_of(NOp op) {
  using energy::InstrClass;
  switch (op) {
    case NOp::kLdw:
    case NOp::kLdb:
    case NOp::kLdd:
      return InstrClass::kLoad;
    case NOp::kStw:
    case NOp::kStb:
    case NOp::kStd:
      return InstrClass::kStore;
    case NOp::kBeq:
    case NOp::kBne:
    case NOp::kBlt:
    case NOp::kBle:
    case NOp::kBgt:
    case NOp::kBge:
    case NOp::kJmp:
    case NOp::kCall:
    case NOp::kCallv:
    case NOp::kRet:
    case NOp::kTrap:
    case NOp::kRtNewArr:
    case NOp::kRtNewObj:
      return InstrClass::kBranch;
    case NOp::kMul:
    case NOp::kDiv:
    case NOp::kRem:
    case NOp::kFadd:
    case NOp::kFsub:
    case NOp::kFmul:
    case NOp::kFdiv:
    case NOp::kFneg:
    case NOp::kI2d:
    case NOp::kD2i:
    case NOp::kFcmp:
    case NOp::kIntrI:
    case NOp::kIntrD:
      return InstrClass::kAluComplex;
    case NOp::kNop:
      return InstrClass::kNop;
    default:
      return InstrClass::kAluSimple;
  }
}

enum class TrapCode : std::int32_t {
  kNullPointer = 1,
  kArrayBounds = 2,
  kDivByZero = 3,
  kUnreachable = 4,
};

/// Human-readable guest-fault description (VmError message text; shared by
/// every executor flavor).
const char* trap_message(TrapCode c);

/// Math/runtime intrinsics exposed to guest programs. Each has a fixed cost
/// in equivalent complex-ALU operations (software libm on the embedded core).
enum class Intrinsic : std::int32_t {
  kSqrt = 0,
  kSin,
  kCos,
  kExp,
  kLog,
  kFabs,
  kFloor,
  kPow,
  kIabs,
  kImin,
  kImax,
  kDmin,
  kDmax,
  kCount
};

const char* intrinsic_name(Intrinsic i);

/// Equivalent complex-ALU operation count charged per intrinsic call.
/// Constexpr-inline: the executor and interpreter look this up once per
/// executed intrinsic, so an out-of-line call here was pure overhead on the
/// hot path (same rationale as instr_class_of above).
constexpr std::uint32_t intrinsic_cost(Intrinsic i) {
  // Equivalent complex-ALU ops of a software libm on a core without hardware
  // transcendentals (microSPARC-IIep has FPU add/mul/div only).
  switch (i) {
    case Intrinsic::kSqrt: return 12;
    case Intrinsic::kSin: return 40;
    case Intrinsic::kCos: return 40;
    case Intrinsic::kExp: return 32;
    case Intrinsic::kLog: return 32;
    case Intrinsic::kPow: return 70;
    case Intrinsic::kFabs: return 1;
    case Intrinsic::kFloor: return 2;
    case Intrinsic::kIabs: return 1;
    case Intrinsic::kImin: return 1;
    case Intrinsic::kImax: return 1;
    case Intrinsic::kDmin: return 1;
    case Intrinsic::kDmax: return 1;
    case Intrinsic::kCount: break;
  }
  return 1;
}

/// True if the intrinsic produces a double (else int).
bool intrinsic_returns_double(Intrinsic i);

/// Number of double arguments the intrinsic consumes from f1.. (rest are
/// integer arguments from r1..).
int intrinsic_fp_args(Intrinsic i);
int intrinsic_int_args(Intrinsic i);

/// Evaluate a double-result intrinsic. `fp` / `ints` hold the FP and integer
/// arguments in order (only the first intrinsic_fp_args / intrinsic_int_args
/// entries are read). Shared by the native executor and the interpreter.
double apply_intrinsic_d(Intrinsic i, const double* fp, const std::int32_t* ints);
/// Evaluate an int-result intrinsic.
std::int32_t apply_intrinsic_i(Intrinsic i, const std::int32_t* ints);

struct NInstr {
  NOp op = NOp::kNop;
  std::uint8_t rd = 0;
  std::uint8_t ra = 0;
  std::uint8_t rb = 0;
  std::int32_t imm = 0;
};

/// A compiled method body: code, FP literal pool, and frame requirements.
///
/// `install()` assigns simulated addresses so instruction fetches and
/// literal loads hit the cache model at realistic locations.
struct NativeProgram {
  std::vector<NInstr> code;
  std::vector<double> literals;
  std::uint32_t spill_bytes = 0;
  std::int32_t method_id = -1;

  /// Instruction indices whose memory operand the JIT emitted as a program
  /// constant (literal-pool loads off r27, static-field slots off r0).
  /// Advisory metadata for tests: the fused stream builder re-detects these
  /// sites from the addressing pattern itself (isa/nstream.cpp), because
  /// programs shipped over the wire (net/protocol.cpp) or built by hand
  /// don't carry this vector; tests cross-check the two views agree on
  /// JIT-compiled methods.
  std::vector<std::uint32_t> pool_sites;

  mem::Addr code_base = mem::kNullAddr;
  mem::Addr literal_base = mem::kNullAddr;

  bool installed() const { return code_base != mem::kNullAddr; }

  /// Allocate simulated memory for code + literals and copy literal values
  /// into the arena (kLdd reads them back through the cache model).
  void install(mem::Arena& arena);

  /// Size of the machine-code image in bytes (4 bytes per instruction plus
  /// the literal pool) — this is what a remote compilation ships over the
  /// air in the AA strategy.
  std::size_t image_bytes() const {
    return code.size() * 4 + literals.size() * 8;
  }

  std::string disassemble() const;
};

}  // namespace javelin::isa
