#include "isa/nisa.hpp"

#include <cmath>
#include <sstream>

#include "isa/nspec.hpp"

namespace javelin::isa {

const char* nop_name(NOp op) {
  if (static_cast<std::size_t>(op) >= kNumNOps) return "?";
  return nspec::spec(op).mnemonic;
}

const char* trap_message(TrapCode c) {
  switch (c) {
    case TrapCode::kNullPointer: return "null pointer dereference";
    case TrapCode::kArrayBounds: return "array index out of bounds";
    case TrapCode::kDivByZero: return "division by zero";
    case TrapCode::kUnreachable: return "unreachable code reached";
  }
  return "unknown trap";
}

const char* intrinsic_name(Intrinsic i) {
  switch (i) {
    case Intrinsic::kSqrt: return "sqrt";
    case Intrinsic::kSin: return "sin";
    case Intrinsic::kCos: return "cos";
    case Intrinsic::kExp: return "exp";
    case Intrinsic::kLog: return "log";
    case Intrinsic::kFabs: return "fabs";
    case Intrinsic::kFloor: return "floor";
    case Intrinsic::kPow: return "pow";
    case Intrinsic::kIabs: return "iabs";
    case Intrinsic::kImin: return "imin";
    case Intrinsic::kImax: return "imax";
    case Intrinsic::kDmin: return "dmin";
    case Intrinsic::kDmax: return "dmax";
    case Intrinsic::kCount: break;
  }
  return "?";
}

bool intrinsic_returns_double(Intrinsic i) {
  switch (i) {
    case Intrinsic::kIabs:
    case Intrinsic::kImin:
    case Intrinsic::kImax:
      return false;
    default:
      return true;
  }
}

int intrinsic_fp_args(Intrinsic i) {
  switch (i) {
    case Intrinsic::kPow:
    case Intrinsic::kDmin:
    case Intrinsic::kDmax:
      return 2;
    case Intrinsic::kIabs:
    case Intrinsic::kImin:
    case Intrinsic::kImax:
      return 0;
    default:
      return 1;
  }
}

int intrinsic_int_args(Intrinsic i) {
  switch (i) {
    case Intrinsic::kIabs:
      return 1;
    case Intrinsic::kImin:
    case Intrinsic::kImax:
      return 2;
    default:
      return 0;
  }
}

double apply_intrinsic_d(Intrinsic i, const double* fp,
                         const std::int32_t* ints) {
  (void)ints;
  switch (i) {
    case Intrinsic::kSqrt: return std::sqrt(fp[0]);
    case Intrinsic::kSin: return std::sin(fp[0]);
    case Intrinsic::kCos: return std::cos(fp[0]);
    case Intrinsic::kExp: return std::exp(fp[0]);
    case Intrinsic::kLog: return std::log(fp[0]);
    case Intrinsic::kFabs: return std::fabs(fp[0]);
    case Intrinsic::kFloor: return std::floor(fp[0]);
    case Intrinsic::kPow: return std::pow(fp[0], fp[1]);
    case Intrinsic::kDmin: return std::fmin(fp[0], fp[1]);
    case Intrinsic::kDmax: return std::fmax(fp[0], fp[1]);
    default:
      throw Error("intrinsic: not a double intrinsic");
  }
}

std::int32_t apply_intrinsic_i(Intrinsic i, const std::int32_t* ints) {
  switch (i) {
    case Intrinsic::kIabs: return ints[0] < 0 ? -ints[0] : ints[0];
    case Intrinsic::kImin: return ints[0] < ints[1] ? ints[0] : ints[1];
    case Intrinsic::kImax: return ints[0] > ints[1] ? ints[0] : ints[1];
    default:
      throw Error("intrinsic: not an int intrinsic");
  }
}

void NativeProgram::install(mem::Arena& arena) {
  code_base = arena.alloc_immortal(code.size() * 4 + 4, 4);
  if (!literals.empty()) {
    literal_base = arena.alloc_immortal(literals.size() * 8, 8);
    for (std::size_t i = 0; i < literals.size(); ++i)
      arena.store_f64(literal_base + static_cast<mem::Addr>(i * 8), literals[i]);
  } else {
    // Point at the (unused) end of the code region so r27 is always valid.
    literal_base = code_base;
  }
}

std::string NativeProgram::disassemble() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const NInstr& in = code[i];
    os << i << ":\t" << nop_name(in.op) << " rd=" << int(in.rd)
       << " ra=" << int(in.ra) << " rb=" << int(in.rb) << " imm=" << in.imm
       << "\n";
  }
  return os.str();
}

}  // namespace javelin::isa
