// The fused superinstruction dispatch flavor (NExecMode::kFused).
//
// run_stream executes a pre-decoded NativeStream instead of raw NInstr code.
// Per-dispatch savings over the plain loops, all host-side only:
//  * fetch address, icache line key, energy class and joules per instruction
//    come pre-resolved from the entry — no per-iteration recomputation;
//  * literal-pool / static-slot addresses are absolute in the entry (Abs
//    handlers) — no register adds on the address path;
//  * the committed profile-derived pair set (isa/nfusion.inc) executes two
//    instructions per dispatch, halving indirect-jump pressure on exactly
//    the transitions the corpus executes most.
//
// Simulated state is bit-identical to run()/run_switch() by construction:
// each entry replays its constituents' fetch/charge/execute triples in
// original order through the same body macros (executor_fused.inc), and the
// differential test compares all three flavors over the app corpus.
#include "isa/executor.hpp"
#include "isa/nstream.hpp"

#include <cmath>

#include "isa/nspec.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define JAVELIN_NEXEC_HAVE_COMPUTED_GOTO 1
#else
#define JAVELIN_NEXEC_HAVE_COMPUTED_GOTO 0
#endif

namespace javelin::isa {

#if !JAVELIN_NEXEC_HAVE_COMPUTED_GOTO

// Without &&label support the stream tier has no host advantage over the
// switch loop; degrade to the plain flavor (same simulated state).
void NativeExecutor::run_stream(const NativeProgram& prog,
                                const NativeStream& stream) {
  (void)stream;
  run(prog);
}

#else

void NativeExecutor::run_stream(const NativeProgram& prog,
                                const NativeStream& stream) {
  if (!prog.installed())
    throw Error("executor: program not installed in simulated memory");
  Core& c = core_;
  if (++c.call_depth > Core::kMaxCallDepth) {
    --c.call_depth;
    throw VmError("executor: native call depth exceeded");
  }
  const std::size_t frame_mark = c.arena->stack_mark();
  mem::Addr frame = mem::kNullAddr;
  if (prog.spill_bytes > 0) frame = c.arena->alloc_stack(prog.spill_bytes, 8);
  iregs_[kFrameReg] = frame;
  iregs_[kLiteralBaseReg] = prog.literal_base;

  const auto i32 = [](std::int64_t v) { return static_cast<std::int32_t>(v); };
  std::size_t pc = 0;
  std::size_t next = 0;
  const std::size_t n = stream.entries.size();
  const NStreamEntry* const es = stream.entries.data();
  const NStreamEntry* e_p = nullptr;

  mem::MemoryHierarchy& hier = *c.hier;
  mem::DirectMappedCache& icache = hier.icache();
  mem::Arena& arena = *c.arena;
  const energy::InstructionEnergyTable& et = c.cfg->energy;
  energy::InstrCounts& counts = c.meter->counts_mut();
  double& core_slot = c.meter->core_joules_ref();
  const std::uint64_t step_limit = c.step_limit;

  // Register-cached core state; same flush/reload contract as run_impl
  // (executor.cpp).
  std::uint64_t cycles = c.cycles;
  std::uint64_t steps = c.steps;
  double core_j = core_slot;
  bool cached = true;
  const auto flush = [&] {
    if (cached) {
      c.cycles = cycles;
      c.steps = steps;
      core_slot = core_j;
      cached = false;
    }
  };
  const auto reload = [&] {
    cycles = c.cycles;
    steps = c.steps;
    core_j = core_slot;
    cached = true;
  };

  const auto wr_i = [&](std::uint8_t rd, std::int64_t v) {
    iregs_[rd] = v;
    iregs_[0] = 0;
  };
  const auto wr_f = [&](std::uint8_t rd, double v) {
    fregs_[rd] = v;
    fregs_[0] = 0.0;
  };

  std::uint64_t cur_line = ~0ULL;

// Fetch + charge of a fused entry's second constituent. Between the first
// constituent's fetch and this one nothing touches the icache (bridge ops
// are never fused), so cur_line still names the first's line and the memo
// compare below is exact — same observable effects as the plain loop's
// per-instruction sequence.
#define JAVELIN_NSTREAM_FETCH_CHARGE_B()                                    \
  do {                                                                      \
    if (e_p->line_b == cur_line) {                                          \
      icache.note_repeat_read_hit();                                        \
    } else {                                                                \
      cur_line = e_p->line_b;                                               \
      cycles += hier.fetch(e_p->fetch_b);                                   \
    }                                                                       \
    counts.add(static_cast<energy::InstrClass>(e_p->cls_b));                \
    core_j += e_p->ej_b;                                                    \
    ++cycles;                                                               \
    if (++steps > step_limit)                                               \
      throw VmError("core: step limit exceeded (runaway guest program?)");  \
  } while (0)

  try {
    static const void* kFLabels[] = {
// Plain single-op entries reuse the shared handler bodies.
#define JAVELIN_NLBL(Name, mnem, cat, opnd, cls, flg) &&p_##Name,
        JAVELIN_NOP_SPEC_LIST(JAVELIN_NLBL)
#undef JAVELIN_NLBL
        // Abs variants, in kNFopAbsBase order.
        &&p_LdwAbs, &&p_LdbAbs, &&p_LddAbs, &&p_StwAbs, &&p_StbAbs,
        &&p_StdAbs,
// Profile-derived fused pairs, in rank order.
#define JAVELIN_NFUSE(rank, Kind, OpA, OpB, count) &&f_##OpA##_##OpB,
#include "isa/nfusion.inc"
#undef JAVELIN_NFUSE
    };
    static_assert(sizeof(kFLabels) / sizeof(kFLabels[0]) == kNumNFops);

  dispatch:
    if (pc >= n) goto done;
    e_p = &es[pc];
    // Fetch + charge of the (first) constituent, from pre-resolved entry
    // fields; replays exactly what run_impl's per-instruction macro does.
    if (e_p->line_a == cur_line) {
      icache.note_repeat_read_hit();
    } else {
      cur_line = e_p->line_a;
      cycles += hier.fetch(e_p->fetch_a);
    }
    counts.add(static_cast<energy::InstrClass>(e_p->cls_a));
    core_j += e_p->ej_a;
    ++cycles;
    if (++steps > step_limit)
      throw VmError("core: step limit exceeded (runaway guest program?)");
    next = pc + 1;
    goto* kFLabels[e_p->fop];

// ---- plain single-op handlers (shared bodies) -------------------------------
#define in (e_p->a)
#define JAVELIN_NH(Name) p_##Name : {
#define JAVELIN_NH_END \
  }                    \
  pc = next;           \
  goto dispatch;
#include "isa/executor_ops.inc"
#undef JAVELIN_NH
#undef JAVELIN_NH_END
#undef in

  // ---- Abs handlers: operand pre-resolved into e_p->abs_a ------------------
  p_LdwAbs : {
    const auto addr = static_cast<mem::Addr>(e_p->abs_a);
    cycles += hier.load(addr);
    wr_i(e_p->a.rd, arena.load_i32(addr));
  }
    pc = next;
    goto dispatch;

  p_LdbAbs : {
    const auto addr = static_cast<mem::Addr>(e_p->abs_a);
    cycles += hier.load(addr);
    wr_i(e_p->a.rd, arena.load_u8(addr));
  }
    pc = next;
    goto dispatch;

  p_LddAbs : {
    const auto addr = static_cast<mem::Addr>(e_p->abs_a);
    cycles += hier.load(addr);
    wr_f(e_p->a.rd, arena.load_f64(addr));
  }
    pc = next;
    goto dispatch;

  p_StwAbs : {
    const auto addr = static_cast<mem::Addr>(e_p->abs_a);
    cycles += hier.store(addr);
    arena.store_i32(addr, i32(iregs_[e_p->a.rd]));
  }
    pc = next;
    goto dispatch;

  p_StbAbs : {
    const auto addr = static_cast<mem::Addr>(e_p->abs_a);
    cycles += hier.store(addr);
    arena.store_u8(addr, static_cast<std::uint8_t>(iregs_[e_p->a.rd]));
  }
    pc = next;
    goto dispatch;

  p_StdAbs : {
    const auto addr = static_cast<mem::Addr>(e_p->abs_a);
    cycles += hier.store(addr);
    arena.store_f64(addr, fregs_[e_p->a.rd]);
  }
    pc = next;
    goto dispatch;

// ---- fused-pair handlers, stamped from the committed ranking ---------------
// Plain-first shape: execute A, then replay B's fetch/charge, then execute B.
// Branch-first shape: a taken branch dispatches away having executed only A
// (next already remapped to the target entry); on fall-through B replays.
#define JAVELIN_NFUSE_P(OpA, OpB)       \
  f_##OpA##_##OpB : {                   \
    {JAVELIN_NFB_##OpA(e_p->a)}         \
    JAVELIN_NSTREAM_FETCH_CHARGE_B();   \
    {JAVELIN_NFB_##OpB(e_p->b)}         \
  }                                     \
    pc = next;                          \
    goto dispatch;
#define JAVELIN_NFUSE_B(OpA, OpB)                    \
  f_##OpA##_##OpB : {                                \
    if (JAVELIN_NCOND_##OpA(e_p->a)) {               \
      next = static_cast<std::uint32_t>(e_p->a.imm); \
    } else {                                         \
      JAVELIN_NSTREAM_FETCH_CHARGE_B();              \
      {JAVELIN_NFB_##OpB(e_p->b)}                    \
    }                                                \
  }                                                  \
    pc = next;                                       \
    goto dispatch;
#define JAVELIN_NFUSE(rank, Kind, OpA, OpB, count) \
  JAVELIN_NFUSE_##Kind(OpA, OpB)
#include "isa/nfusion.inc"
#undef JAVELIN_NFUSE
#undef JAVELIN_NFUSE_P
#undef JAVELIN_NFUSE_B

  done:
    flush();
  } catch (...) {
    flush();
    c.arena->stack_release(frame_mark);
    --c.call_depth;
    throw;
  }
  c.arena->stack_release(frame_mark);
  --c.call_depth;

#undef JAVELIN_NSTREAM_FETCH_CHARGE_B
}

#endif  // JAVELIN_NEXEC_HAVE_COMPUTED_GOTO

}  // namespace javelin::isa
