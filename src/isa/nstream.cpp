#include "isa/nstream.hpp"

#include <array>

#include "energy/energy.hpp"
#include "mem/cache.hpp"

namespace javelin::isa {

namespace {

// pair (a, b) -> fop code, or kNoFuse. Built once from the committed
// nfusion.inc ranking (kFusedPairs).
constexpr std::uint16_t kNoFuse = 0xFFFF;

struct PairLut {
  std::array<std::uint16_t, kNumNOps * kNumNOps> fop{};
  PairLut() {
    fop.fill(kNoFuse);
    for (std::uint16_t i = 0; i < kNumFusedPairs; ++i) {
      const NFusePair& p = kFusedPairs[i];
      fop[static_cast<std::size_t>(p.a) * kNumNOps +
          static_cast<std::size_t>(p.b)] =
          static_cast<std::uint16_t>(kNFopFusedBase + i);
    }
  }
};

const PairLut& pair_lut() {
  static const PairLut lut;
  return lut;
}

// The six memory ops are the first six NOp values in enum order, which makes
// the plain->Abs fop mapping a constant offset; pin that layout here.
static_assert(static_cast<int>(NOp::kLdw) == 0 &&
                  static_cast<int>(NOp::kLdb) == 1 &&
                  static_cast<int>(NOp::kLdd) == 2 &&
                  static_cast<int>(NOp::kStw) == 3 &&
                  static_cast<int>(NOp::kStb) == 4 &&
                  static_cast<int>(NOp::kStd) == 5,
              "nstream: Abs fop mapping assumes memory ops lead the NOp enum");

bool is_mem_op(NOp op) {
  const nspec::NCategory c = nspec::spec(op).category;
  return c == nspec::NCategory::kMemLoad || c == nspec::NCategory::kMemStore;
}

}  // namespace

NativeStream build_native_stream(const NativeProgram& prog,
                                 const energy::InstructionEnergyTable& et,
                                 const mem::DirectMappedCache& icache) {
  NativeStream s;
  if (!prog.installed())
    throw Error("nstream: program must be installed before stream build");
  const std::size_t n = prog.code.size();
  if (n == 0) return s;
  const NInstr* const code = prog.code.data();

  // Pool-operand pre-resolution is sound only while the base register still
  // holds what the executor wrote at method entry. r0 is hardwired zero
  // (writes are re-zeroed), so r0-based absolute addressing always resolves;
  // r27 (literal base) resolves unless some instruction writes an integer
  // result into it — JIT output never does, but hand-built or adversarial
  // programs may, and then every r27 site degrades gracefully to the plain
  // handler.
  bool r27_stable = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (code[i].rd == kLiteralBaseReg && nspec::writes_int_rd(code[i].op)) {
      r27_stable = false;
      break;
    }
  }

  // A memory operand is a program constant when rb is the zero register and
  // ra is either the zero register (static-field slots: address = imm) or
  // the stable literal base (pool loads: address = literal_base + imm). The
  // sum is formed in int64 exactly as the plain handler forms
  // iregs_[ra] + iregs_[rb] + imm, so the eventual Addr cast is identical.
  const auto abs_resolvable = [&](const NInstr& in, std::int64_t& abs) {
    if (!is_mem_op(in.op) || in.rb != kZeroReg) return false;
    if (in.ra == kZeroReg) {
      abs = static_cast<std::int64_t>(in.imm);
      return true;
    }
    if (in.ra == kLiteralBaseReg && r27_stable) {
      abs = static_cast<std::int64_t>(prog.literal_base) + in.imm;
      return true;
    }
    return false;
  };

  // Pass 1: mark branch-target instructions. A fused pair's second
  // constituent must not be a join point — entering it other than by
  // fall-through from the first would skip the first's replay.
  std::vector<bool> is_target(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (nspec::uses_branch_target(code[i].op)) {
      const std::int32_t t = code[i].imm;
      if (t >= 0 && static_cast<std::size_t>(t) < n) is_target[t] = true;
    }
  }

  // Pass 2: emit entries. entry_of maps each original instruction index that
  // starts an entry to its stream index (second constituents are never
  // branch targets, so only entry starts need mapping).
  std::vector<std::uint32_t> entry_of(n + 1, 0);
  const PairLut& lut = pair_lut();
  std::size_t pc = 0;
  while (pc < n) {
    entry_of[pc] = static_cast<std::uint32_t>(s.entries.size());
    const NInstr& a = code[pc];
    NStreamEntry e;
    e.a = a;
    e.fetch_a = prog.code_base + static_cast<mem::Addr>(pc * 4);
    e.line_a = icache.line_key(e.fetch_a);
    const energy::InstrClass ca = instr_class_of(a.op);
    e.cls_a = static_cast<std::uint8_t>(ca);
    e.ej_a = et.of(ca);

    std::int64_t abs = 0;
    if (abs_resolvable(a, abs)) {
      // Pre-resolution takes precedence over fusion: the Abs handler already
      // eliminates the per-dispatch address arithmetic, and keeping pool
      // sites out of pairs keeps the fused handler set closed over the
      // profile-derived opcode ranking.
      e.fop = static_cast<std::uint16_t>(kNFopAbsBase +
                                         static_cast<std::uint16_t>(a.op));
      e.abs_a = abs;
      ++s.abs_sites;
      ++pc;
      s.entries.push_back(e);
      continue;
    }

    if (pc + 1 < n && !is_target[pc + 1]) {
      const NInstr& b = code[pc + 1];
      const std::uint16_t fop =
          lut.fop[static_cast<std::size_t>(a.op) * kNumNOps +
                  static_cast<std::size_t>(b.op)];
      std::int64_t abs_b = 0;
      if (fop != kNoFuse && !abs_resolvable(b, abs_b)) {
        e.fop = fop;
        e.b = b;
        e.fetch_b = prog.code_base + static_cast<mem::Addr>((pc + 1) * 4);
        e.line_b = icache.line_key(e.fetch_b);
        const energy::InstrClass cb = instr_class_of(b.op);
        e.cls_b = static_cast<std::uint8_t>(cb);
        e.ej_b = et.of(cb);
        ++s.fused_pairs;
        pc += 2;
        s.entries.push_back(e);
        continue;
      }
    }

    e.fop = static_cast<std::uint16_t>(a.op);
    ++s.plain_ops;
    ++pc;
    s.entries.push_back(e);
  }
  entry_of[n] = static_cast<std::uint32_t>(s.entries.size());

  // Pass 3: remap branch-target immediates from instruction indices to
  // stream entry indices. Targets outside [0, n) end execution in the plain
  // loop (`pc >= n`), so they map to the entry count, which the stream loop
  // treats the same way.
  const auto remap = [&](NInstr& in) {
    if (!nspec::uses_branch_target(in.op)) return;
    const std::int32_t t = in.imm;
    in.imm = (t >= 0 && static_cast<std::size_t>(t) < n)
                 ? static_cast<std::int32_t>(entry_of[t])
                 : static_cast<std::int32_t>(s.entries.size());
  };
  for (NStreamEntry& e : s.entries) {
    remap(e.a);
    if (e.fop >= kNFopFusedBase) remap(e.b);
  }

  return s;
}

}  // namespace javelin::isa
