// Machine configurations for the simulated client and server.
//
// The paper's client is a 100 MHz microSPARC-IIep-like five-stage RISC core
// with an 8 KB direct-mapped D-cache, a 16 KB I-cache and 32 MB of DRAM; the
// server is a 750 MHz SPARC workstation. During remote execution the client
// powers down, consuming leakage energy assumed to be 10% of its normal power
// (Section 2).
#pragma once

#include <string>

#include "energy/energy.hpp"
#include "mem/cache.hpp"

namespace javelin::isa {

struct MachineConfig {
  std::string name;
  double clock_hz = 100e6;
  mem::CacheConfig icache{16 * 1024, 32};
  mem::CacheConfig dcache{8 * 1024, 32};
  std::uint32_t miss_penalty_cycles = 20;
  energy::InstructionEnergyTable energy{};
  /// Average active power, used as the baseline for the power-down state.
  double normal_power_w = 0.35;
  /// Leakage power while powered down, as a fraction of normal power.
  double leakage_fraction = 0.10;

  double leakage_power_w() const { return normal_power_w * leakage_fraction; }
  double seconds_for_cycles(std::uint64_t cycles) const {
    return static_cast<double>(cycles) / clock_hz;
  }
};

/// The paper's mobile client (Section 2).
MachineConfig client_machine();

/// The paper's remote server: 750 MHz SPARC workstation. Its energy is never
/// charged to the client — the figures report the client's battery only —
/// but it is metered on the server's own lines for total-system accounting
/// (rt::Server::energy_j). Its speed also matters to the client: it
/// determines the client's power-down interval.
MachineConfig server_machine();

}  // namespace javelin::isa
