// The fused native superinstruction stream (the executor's third dispatch
// flavor, NExecMode::kFused).
//
// A NativeStream is a pre-decoded view of an installed NativeProgram: one
// NStreamEntry per dispatch, where
//  * per-instruction constants the plain loop recomputes every iteration —
//    fetch address, icache line key, energy class and per-instruction joules —
//    are resolved once at build time;
//  * literal-pool and static-field operands whose effective address is a
//    program constant (r27/r0-based addressing, see pool-site detection in
//    nstream.cpp) are pre-resolved into an absolute address, so the fused
//    executor does zero per-dispatch pool arithmetic (`Abs` fop variants);
//  * the hottest dynamically-adjacent opcode pairs — ranked by the corpus
//    execution-frequency profiler (apps/javelin_profile.cpp) and committed as
//    isa/nfusion.inc — collapse into one stream entry dispatched once.
//
// The contract is strict bit-identity of simulated state with the plain
// executor flavors: every entry replays the exact fetch/charge/execute
// sequence of its constituents in original order
// (tests/dispatch_differential_test.cpp pins this across the app corpus).
// Only host-side dispatch work is removed.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/nisa.hpp"
#include "isa/nspec.hpp"

namespace javelin::energy {
struct InstructionEnergyTable;
}
namespace javelin::mem {
class DirectMappedCache;
}

namespace javelin::isa {

// ---- fop code space ---------------------------------------------------------
// NStreamEntry::fop indexes the fused executor's dispatch table:
//   [0, kNumNOps)                 plain single op (fop == raw NOp value);
//   [kNFopAbsBase, +6)            Abs variants of the six memory ops, operand
//                                 pre-resolved into NStreamEntry::abs_a;
//   [kNFopFusedBase, +kNumFusedPairs)  profile-derived fused pairs, one code
//                                 per committed isa/nfusion.inc rank.

inline constexpr std::uint16_t kNFopAbsBase =
    static_cast<std::uint16_t>(kNumNOps);
inline constexpr std::uint16_t kNFopLdwAbs = kNFopAbsBase + 0;
inline constexpr std::uint16_t kNFopLdbAbs = kNFopAbsBase + 1;
inline constexpr std::uint16_t kNFopLddAbs = kNFopAbsBase + 2;
inline constexpr std::uint16_t kNFopStwAbs = kNFopAbsBase + 3;
inline constexpr std::uint16_t kNFopStbAbs = kNFopAbsBase + 4;
inline constexpr std::uint16_t kNFopStdAbs = kNFopAbsBase + 5;
inline constexpr std::uint16_t kNFopFusedBase = kNFopAbsBase + 6;

/// Number of committed profile-derived fused pairs (isa/nfusion.inc rows).
inline constexpr std::uint16_t kNumFusedPairs = 0
#define JAVELIN_NFUSE(rank, Kind, OpA, OpB, count) +1
#include "isa/nfusion.inc"
#undef JAVELIN_NFUSE
    ;

inline constexpr std::uint16_t kNumNFops = kNFopFusedBase + kNumFusedPairs;

/// One committed fused pair, in profile-rank order. `branch_first` selects the
/// handler shape: a conditional-branch first constituent only executes its
/// second on fall-through.
struct NFusePair {
  NOp a = NOp::kNop;
  NOp b = NOp::kNop;
  bool branch_first = false;
};

inline constexpr NFusePair kFusedPairs[kNumFusedPairs == 0 ? 1
                                                           : kNumFusedPairs] = {
#define JAVELIN_NFUSE_KIND_P false
#define JAVELIN_NFUSE_KIND_B true
#define JAVELIN_NFUSE(rank, Kind, OpA, OpB, count) \
  NFusePair{NOp::k##OpA, NOp::k##OpB, JAVELIN_NFUSE_KIND_##Kind},
#include "isa/nfusion.inc"
#undef JAVELIN_NFUSE
#undef JAVELIN_NFUSE_KIND_P
#undef JAVELIN_NFUSE_KIND_B
};

// Every committed pair must be admissible under the nspec legality predicate,
// and its handler shape must match the first constituent's category. A
// regenerated nfusion.inc that violates either fails to compile.
constexpr bool nfusion_table_legal() {
  for (std::uint16_t i = 0; i < kNumFusedPairs; ++i) {
    const NFusePair& p = kFusedPairs[i];
    if (!nspec::fusable_pair_legal(p.a, p.b)) return false;
    if (p.branch_first != nspec::is_cond_branch(p.a)) return false;
  }
  return true;
}
static_assert(nfusion_table_legal(),
              "nfusion.inc: inadmissible pair or wrong P/B handler shape");

// ---- the stream -------------------------------------------------------------

/// One pre-decoded dispatch unit. For plain and Abs entries only the `a`/
/// `_a` members are meaningful; fused entries carry both constituents.
/// Branch-target immediates are remapped to *stream entry* indices at build
/// time (targets at or past the end of code map to the entry count, which the
/// run loop treats as completion, mirroring the plain loop's `pc >= n`).
struct NStreamEntry {
  NInstr a{};                  ///< first constituent (imm remapped if branch)
  NInstr b{};                  ///< second constituent of a fused pair
  std::uint64_t line_a = 0;    ///< icache line key of fetch_a
  std::uint64_t line_b = 0;    ///< icache line key of fetch_b
  double ej_a = 0.0;           ///< joules charged per execution of `a`
  double ej_b = 0.0;
  mem::Addr fetch_a = 0;       ///< simulated fetch address of `a`
  mem::Addr fetch_b = 0;
  std::int64_t abs_a = 0;      ///< pre-resolved address (Abs fops only)
  std::uint16_t fop = 0;       ///< dispatch code (see fop code space above)
  std::uint8_t cls_a = 0;      ///< energy::InstrClass of `a`
  std::uint8_t cls_b = 0;
};

/// A pre-decoded method body for NativeExecutor::run_stream. Built once per
/// installed program (jvm::ExecutionEngine does so at install time) and
/// immutable afterwards.
struct NativeStream {
  std::vector<NStreamEntry> entries;

  // Build statistics (tests + javelin_profile report them).
  std::uint32_t fused_pairs = 0;   ///< entries that collapse two instructions
  std::uint32_t abs_sites = 0;     ///< operands pre-resolved to an address
  std::uint32_t plain_ops = 0;     ///< single-instruction entries

  bool empty() const { return entries.empty(); }
};

/// Pre-decode `prog` (which must be installed, so code/literal addresses are
/// final) into a stream. `et` supplies the per-class joule column and
/// `icache` the line-key geometry baked into each entry.
NativeStream build_native_stream(const NativeProgram& prog,
                                 const energy::InstructionEnergyTable& et,
                                 const mem::DirectMappedCache& icache);

}  // namespace javelin::isa
