// Wireless communication energy model (paper Section 2, Fig 2).
//
// The client's WCDMA chip set is modelled per component, with the paper's
// data-sheet power numbers. The transmitter power amplifier has four power
// control settings tracking channel condition: Class 1 for the poorest
// channel (5.88 W) down to Class 4 for the best (0.37 W). The effective data
// rate is 2.3 Mbps. Channel condition varies over time according to
// user-supplied distributions (the paper's simulation approach for the IS-95
// pilot-channel tracking), and a pilot-based estimator samples it.
#pragma once

#include <array>
#include <cmath>
#include <memory>
#include <vector>

#include "support/rng.hpp"
#include "support/units.hpp"

namespace javelin::radio {

/// Transmit power-amplifier setting. Class 1 = poor channel (highest power),
/// Class 4 = best channel (lowest power).
enum class PowerClass : std::uint8_t { kClass1 = 1, kClass2, kClass3, kClass4 };

constexpr std::array<PowerClass, 4> kAllPowerClasses{
    PowerClass::kClass1, PowerClass::kClass2, PowerClass::kClass3,
    PowerClass::kClass4};

const char* power_class_name(PowerClass c);

/// Component powers from the paper's Fig 2 (RFMD / Analog Devices data
/// sheets). Rx = receiver chain, Tx = transmitter chain; the VCO is shared.
struct ComponentPowers {
  double mixer_rx = mW(33.75);
  double demodulator_rx = mW(37.8);
  double adc_rx = mW(710);
  double dac_tx = mW(185);
  std::array<double, 4> power_amp_tx{5.88, 1.5, 0.74, 0.37};  // Class 1..4, W
  double driver_amp_tx = mW(102.6);
  double modulator_tx = mW(108);
  double vco = mW(90);

  double pa(PowerClass c) const {
    return power_amp_tx[static_cast<std::size_t>(c) - 1];
  }
  /// Total transmitter-chain power at a PA setting.
  double tx_power(PowerClass c) const {
    return pa(c) + driver_amp_tx + modulator_tx + dac_tx + vco;
  }
  /// Total receiver-chain power.
  double rx_power() const { return mixer_rx + demodulator_rx + adc_rx + vco; }
};

/// Link-level energy/time calculator at the paper's 2.3 Mbps effective rate.
class CommModel {
 public:
  explicit CommModel(ComponentPowers powers = {}, double bit_rate = Mbps(2.3))
      : powers_(powers), bit_rate_(bit_rate) {}

  double bit_rate() const { return bit_rate_; }
  const ComponentPowers& powers() const { return powers_; }

  double tx_seconds(std::uint64_t bytes) const {
    return static_cast<double>(bytes) * kBitsPerByte / bit_rate_;
  }
  double rx_seconds(std::uint64_t bytes) const { return tx_seconds(bytes); }

  /// Client energy to transmit `bytes` at PA class `c`.
  double tx_energy(std::uint64_t bytes, PowerClass c) const {
    return tx_seconds(bytes) * powers_.tx_power(c);
  }
  /// Client energy to receive `bytes`.
  double rx_energy(std::uint64_t bytes) const {
    return rx_seconds(bytes) * powers_.rx_power();
  }

 private:
  ComponentPowers powers_;
  double bit_rate_;
};

/// Time-varying channel state (what PA class the power control selects).
class ChannelProcess {
 public:
  virtual ~ChannelProcess() = default;
  /// Channel condition at absolute time `t` seconds. Must be deterministic
  /// per instance (repeat queries at the same time agree).
  virtual PowerClass at(double t) = 0;
};

/// Constant channel.
class FixedChannel final : public ChannelProcess {
 public:
  explicit FixedChannel(PowerClass c) : c_(c) {}
  PowerClass at(double) override { return c_; }

 private:
  PowerClass c_;
};

/// Channel redrawn i.i.d. from a categorical distribution every
/// `dwell_seconds` (the paper's "user supplied distributions").
class IidChannel final : public ChannelProcess {
 public:
  /// `weights` are per-class (Class 1..4) non-negative weights.
  IidChannel(std::array<double, 4> weights, double dwell_seconds,
             std::uint64_t seed);
  PowerClass at(double t) override;

 private:
  std::array<double, 4> weights_;
  double dwell_;
  std::uint64_t seed_;
};

/// First-order Markov chain over the four classes with a fixed dwell time
/// per step (models temporally-correlated fading).
class MarkovChannel final : public ChannelProcess {
 public:
  /// `transition[i][j]` = P(next = class j+1 | current = class i+1).
  MarkovChannel(std::array<std::array<double, 4>, 4> transition,
                PowerClass initial, double dwell_seconds, std::uint64_t seed);
  PowerClass at(double t) override;

  /// A reasonable default: sticky states with neighbour transitions.
  static std::array<std::array<double, 4>, 4> default_transition();

 private:
  void advance_to(std::uint64_t step);

  std::array<std::array<double, 4>, 4> transition_;
  double dwell_;
  Rng rng_;
  std::uint64_t cur_step_ = 0;
  PowerClass cur_;
};

/// Pilot-signal-based channel estimator (IS-95-style): the mobile samples the
/// pilot every `period` seconds, so its view of the channel lags reality by
/// up to one period.
class PilotEstimator {
 public:
  PilotEstimator(ChannelProcess& channel, double period_seconds = 20e-3)
      : channel_(channel), period_(period_seconds) {}

  /// Estimated channel condition at time `t` (the last pilot measurement).
  PowerClass estimate(double t) {
    const double sample_time =
        period_ <= 0 ? t : std::floor(t / period_) * period_;
    return channel_.at(sample_time);
  }

  double period() const { return period_; }

 private:
  ChannelProcess& channel_;
  double period_;
};

}  // namespace javelin::radio
