#include "radio/radio.hpp"

#include <cmath>
#include <stdexcept>

namespace javelin::radio {

const char* power_class_name(PowerClass c) {
  switch (c) {
    case PowerClass::kClass1: return "Class 1";
    case PowerClass::kClass2: return "Class 2";
    case PowerClass::kClass3: return "Class 3";
    case PowerClass::kClass4: return "Class 4";
  }
  return "?";
}

IidChannel::IidChannel(std::array<double, 4> weights, double dwell_seconds,
                       std::uint64_t seed)
    : weights_(weights), dwell_(dwell_seconds), seed_(seed) {
  if (dwell_ <= 0) throw std::invalid_argument("IidChannel: dwell must be > 0");
  double total = 0;
  for (double w : weights_) {
    if (w < 0) throw std::invalid_argument("IidChannel: negative weight");
    total += w;
  }
  if (total <= 0) throw std::invalid_argument("IidChannel: no positive weight");
}

PowerClass IidChannel::at(double t) {
  // Hash the dwell-slot index with the seed so queries are deterministic and
  // random-access (no state to advance).
  const auto slot = static_cast<std::uint64_t>(std::max(0.0, t) / dwell_);
  Rng rng(seed_ ^ (slot * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
  const std::size_t idx = rng.categorical(
      std::vector<double>(weights_.begin(), weights_.end()));
  return static_cast<PowerClass>(idx + 1);
}

MarkovChannel::MarkovChannel(std::array<std::array<double, 4>, 4> transition,
                             PowerClass initial, double dwell_seconds,
                             std::uint64_t seed)
    : transition_(transition), dwell_(dwell_seconds), rng_(seed), cur_(initial) {
  if (dwell_ <= 0)
    throw std::invalid_argument("MarkovChannel: dwell must be > 0");
  for (const auto& row : transition_) {
    double total = 0;
    for (double p : row) {
      if (p < 0) throw std::invalid_argument("MarkovChannel: negative prob");
      total += p;
    }
    if (total <= 0)
      throw std::invalid_argument("MarkovChannel: empty transition row");
  }
}

void MarkovChannel::advance_to(std::uint64_t step) {
  while (cur_step_ < step) {
    const auto& row = transition_[static_cast<std::size_t>(cur_) - 1];
    const std::size_t next =
        rng_.categorical(std::vector<double>(row.begin(), row.end()));
    cur_ = static_cast<PowerClass>(next + 1);
    ++cur_step_;
  }
}

PowerClass MarkovChannel::at(double t) {
  const auto step = static_cast<std::uint64_t>(std::max(0.0, t) / dwell_);
  if (step < cur_step_) {
    // Queries are expected to move forward in simulated time; a small
    // backward query (e.g. a pilot sample) returns the current state.
    return cur_;
  }
  advance_to(step);
  return cur_;
}

std::array<std::array<double, 4>, 4> MarkovChannel::default_transition() {
  // Sticky fading: stay with p=0.8, drift to a neighbour with p=0.1 each
  // (reflecting at the ends).
  return {{
      {0.9, 0.1, 0.0, 0.0},
      {0.1, 0.8, 0.1, 0.0},
      {0.0, 0.1, 0.8, 0.1},
      {0.0, 0.0, 0.1, 0.9},
  }};
}

}  // namespace javelin::radio
