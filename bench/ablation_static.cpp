// Ablation: cold-start AA vs static-analysis-seeded AA.
//
// AA's helper-method logic starts every session ignorant: the first few
// invocations of a loop-heavy method are amortized over k = 1, 2, ... calls,
// biasing the decision toward interpretation or remote execution until the
// observed count catches up. The opt-in DecisionPolicy knob runs the
// src/analysis passes once at deploy and seeds the decision with two static
// facts: loop-containing methods amortize compilation over at least
// `seed_invocations` expected executions, and methods whose offload-safety
// verdict is unsafe (static-field writes, unresolved callees) have remote
// execution excluded outright. This bench measures the knob's effect across
// the paper's full 8 apps x 3 situations grid. Cells run on the parallel
// sweep engine; all randomness derives from per-cell seeds, so output (and
// BENCH_static.json) is bit-identical at any JAVELIN_JOBS.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/export.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

using namespace javelin;

namespace {

int remote_count(const sim::StrategyResult& r) {
  const auto it = r.mode_counts.find(rt::ExecMode::kRemote);
  return it == r.mode_counts.end() ? 0 : it->second;
}

}  // namespace

int main() {
  int executions = 120;
  if (const char* env = std::getenv("JAVELIN_ABLATION_EXECS"))
    executions = std::atoi(env);

  const std::vector<apps::App>& apps = apps::registry();
  const sim::Situation situations[] = {
      sim::Situation::kGoodChannelDominantSize,
      sim::Situation::kPoorChannelDominantSize,
      sim::Situation::kUniform,
  };
  constexpr std::size_t kNumSituations = 3;

  sim::SweepEngine engine;

  // Profile each app once, in parallel; the runners are then shared
  // read-only by both of each scenario's cells.
  const auto runners = engine.map<sim::ScenarioRunner>(
      apps.size(),
      [&](std::size_t i) { return sim::ScenarioRunner(apps[i]); });

  rt::ClientConfig seeded_config;
  seeded_config.decision.static_seed = true;

  // Cell layout: [app][situation][cold, seeded], app-major.
  const std::size_t n = apps.size() * kNumSituations * 2;

  // Opt-in Chrome-trace capture (JAVELIN_TRACE_JSON): one track per cell,
  // created up front so the parallel map only touches its own buffer.
  // Tracing is read-only — table and BENCH_static.json are bit-identical
  // either way.
  obs::TraceCollector collector;
  const char* trace_path = std::getenv("JAVELIN_TRACE_JSON");
  std::vector<obs::TraceBuffer*> tracks(n, nullptr);
  if (trace_path) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t app = i / (kNumSituations * 2);
      const std::size_t situation = (i / 2) % kNumSituations;
      const bool seeded = (i % 2) != 0;
      tracks[i] = collector.make_buffer(
          apps[app].name + "/" + sim::situation_tag(situations[situation]) +
              (seeded ? "/seeded" : "/cold"),
          /*order_key=*/i);
    }
  }

  const auto results = engine.map<sim::StrategyResult>(n, [&](std::size_t i) {
    const std::size_t app = i / (kNumSituations * 2);
    const std::size_t situation = (i / 2) % kNumSituations;
    const bool seeded = (i % 2) != 0;
    return runners[app].run(rt::Strategy::kAdaptiveAdaptive,
                            situations[situation], executions,
                            /*verify=*/true,
                            seeded ? &seeded_config : nullptr, tracks[i]);
  });

  TextTable table("Ablation — cold AA vs static-analysis-seeded AA");
  table.set_header({"app", "situation", "cold (J)", "seeded (J)", "delta %",
                    "remote c/s", "compiles c/s"});
  for (std::size_t app = 0; app < apps.size(); ++app) {
    for (std::size_t s = 0; s < kNumSituations; ++s) {
      const std::size_t base = (app * kNumSituations + s) * 2;
      const sim::StrategyResult& cold = results[base];
      const sim::StrategyResult& seeded = results[base + 1];
      if (!cold.all_correct || !seeded.all_correct) {
        std::fprintf(stderr, "FAIL: wrong result in scenario %zu/%zu\n", app,
                     s);
        return 1;
      }
      const double delta =
          cold.total_energy_j > 0.0
              ? 100.0 * (seeded.total_energy_j - cold.total_energy_j) /
                    cold.total_energy_j
              : 0.0;
      table.add_row({apps[app].name, sim::situation_tag(situations[s]),
                     TextTable::num(cold.total_energy_j, 3),
                     TextTable::num(seeded.total_energy_j, 3),
                     TextTable::num(delta, 2),
                     std::to_string(remote_count(cold)) + "/" +
                         std::to_string(remote_count(seeded)),
                     std::to_string(cold.compiles) + "/" +
                         std::to_string(seeded.compiles)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nseeded = DecisionPolicy{static_seed} (deploy-time analysis): loop\n"
      "methods amortize compilation over >= 8 expected executions and\n"
      "statically-unsafe methods lose the remote candidate. delta < 0 means\n"
      "the seed saved energy versus the cold-start decision sequence.");

  // Machine-readable record. Deterministic fields only (no wall-clock), so
  // the file is byte-identical at any JAVELIN_JOBS.
  std::FILE* f = std::fopen("BENCH_static.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write BENCH_static.json\n");
    return 1;
  }
  std::fprintf(f, "{\"bench\": \"ablation_static\", \"executions\": %d, "
               "\"cells\": [", executions);
  for (std::size_t app = 0; app < apps.size(); ++app) {
    for (std::size_t s = 0; s < kNumSituations; ++s) {
      const std::size_t base = (app * kNumSituations + s) * 2;
      const sim::StrategyResult& cold = results[base];
      const sim::StrategyResult& seeded = results[base + 1];
      std::fprintf(
          f,
          "%s\n  {\"app\": \"%s\", \"situation\": \"%s\", "
          "\"cold_energy_j\": %.6f, \"seeded_energy_j\": %.6f, "
          "\"cold_remote\": %d, \"seeded_remote\": %d, "
          "\"cold_compiles\": %d, \"seeded_compiles\": %d}",
          base ? "," : "", apps[app].name.c_str(),
          sim::situation_tag(situations[s]), cold.total_energy_j,
          seeded.total_energy_j, remote_count(cold), remote_count(seeded),
          cold.compiles, seeded.compiles);
    }
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);

  if (trace_path &&
      !obs::export_chrome_trace(collector, "ablation_static", trace_path))
    return 1;
  return 0;
}
