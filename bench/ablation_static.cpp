// Ablation: cold-start AA vs static-analysis-seeded AA.
//
// AA's helper-method logic starts every session ignorant: the first few
// invocations of a loop-heavy method are amortized over k = 1, 2, ... calls,
// biasing the decision toward interpretation or remote execution until the
// observed count catches up. The opt-in DecisionPolicy knob runs the
// src/analysis passes once at deploy and seeds the decision with two static
// facts: loop-containing methods amortize compilation over at least
// `seed_invocations` expected executions, and methods whose offload-safety
// verdict is unsafe (static-field writes, unresolved callees) have remote
// execution excluded outright. A third variant stacks DecisionPolicy::
// wcec_seed on top: guaranteed per-invocation energy ceilings from the
// static WCEC analysis (analysis/wcec.hpp) extend the amortization floor to
// any method with a finite interpreter-tier bound and veto remote execution
// while the local ceiling already beats the curve-fitted remote estimate.
// This bench measures both knobs across the paper's full 8 apps x 3
// situations grid. Cells run on the parallel sweep engine; all randomness
// derives from per-cell seeds, so output (and BENCH_static.json) is
// bit-identical at any JAVELIN_JOBS.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/export.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

using namespace javelin;

namespace {

int remote_count(const sim::StrategyResult& r) {
  const auto it = r.mode_counts.find(rt::ExecMode::kRemote);
  return it == r.mode_counts.end() ? 0 : it->second;
}

}  // namespace

int main() {
  int executions = 120;
  if (const char* env = std::getenv("JAVELIN_ABLATION_EXECS"))
    executions = std::atoi(env);

  const std::vector<apps::App>& apps = apps::registry();
  const sim::Situation situations[] = {
      sim::Situation::kGoodChannelDominantSize,
      sim::Situation::kPoorChannelDominantSize,
      sim::Situation::kUniform,
  };
  constexpr std::size_t kNumSituations = 3;

  sim::SweepEngine engine;

  // Profile each app once, in parallel; the runners are then shared
  // read-only by both of each scenario's cells.
  const auto runners = engine.map<sim::ScenarioRunner>(
      apps.size(),
      [&](std::size_t i) { return sim::ScenarioRunner(apps[i]); });

  rt::ClientConfig seeded_config;
  seeded_config.decision.static_seed = true;

  rt::ClientConfig wcec_config;
  wcec_config.decision.static_seed = true;
  wcec_config.decision.wcec_seed = true;

  constexpr std::size_t kNumVariants = 3;  // cold, seeded, wcec.
  const rt::ClientConfig* variant_configs[kNumVariants] = {
      nullptr, &seeded_config, &wcec_config};
  const char* variant_tags[kNumVariants] = {"cold", "seeded", "wcec"};

  // Cell layout: [app][situation][cold, seeded, wcec], app-major.
  const std::size_t n = apps.size() * kNumSituations * kNumVariants;

  // Opt-in Chrome-trace capture (JAVELIN_TRACE_JSON): one track per cell,
  // created up front so the parallel map only touches its own buffer.
  // Tracing is read-only — table and BENCH_static.json are bit-identical
  // either way.
  obs::TraceCollector collector;
  const char* trace_path = std::getenv("JAVELIN_TRACE_JSON");
  std::vector<obs::TraceBuffer*> tracks(n, nullptr);
  if (trace_path) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t app = i / (kNumSituations * kNumVariants);
      const std::size_t situation = (i / kNumVariants) % kNumSituations;
      tracks[i] = collector.make_buffer(
          apps[app].name + "/" + sim::situation_tag(situations[situation]) +
              "/" + variant_tags[i % kNumVariants],
          /*order_key=*/i);
    }
  }

  const auto results = engine.map<sim::StrategyResult>(n, [&](std::size_t i) {
    const std::size_t app = i / (kNumSituations * kNumVariants);
    const std::size_t situation = (i / kNumVariants) % kNumSituations;
    return runners[app].run(rt::Strategy::kAdaptiveAdaptive,
                            situations[situation], executions,
                            /*verify=*/true,
                            variant_configs[i % kNumVariants], tracks[i]);
  });

  TextTable table("Ablation — cold AA vs static-analysis-seeded AA");
  table.set_header({"app", "situation", "cold (J)", "seeded (J)", "wcec (J)",
                    "delta %", "remote c/s/w", "compiles c/s/w"});
  for (std::size_t app = 0; app < apps.size(); ++app) {
    for (std::size_t s = 0; s < kNumSituations; ++s) {
      const std::size_t base = (app * kNumSituations + s) * kNumVariants;
      const sim::StrategyResult& cold = results[base];
      const sim::StrategyResult& seeded = results[base + 1];
      const sim::StrategyResult& wcec = results[base + 2];
      if (!cold.all_correct || !seeded.all_correct || !wcec.all_correct) {
        std::fprintf(stderr, "FAIL: wrong result in scenario %zu/%zu\n", app,
                     s);
        return 1;
      }
      const double delta =
          cold.total_energy_j > 0.0
              ? 100.0 * (wcec.total_energy_j - cold.total_energy_j) /
                    cold.total_energy_j
              : 0.0;
      table.add_row({apps[app].name, sim::situation_tag(situations[s]),
                     TextTable::num(cold.total_energy_j, 3),
                     TextTable::num(seeded.total_energy_j, 3),
                     TextTable::num(wcec.total_energy_j, 3),
                     TextTable::num(delta, 2),
                     std::to_string(remote_count(cold)) + "/" +
                         std::to_string(remote_count(seeded)) + "/" +
                         std::to_string(remote_count(wcec)),
                     std::to_string(cold.compiles) + "/" +
                         std::to_string(seeded.compiles) + "/" +
                         std::to_string(wcec.compiles)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nseeded = DecisionPolicy{static_seed} (deploy-time analysis): loop\n"
      "methods amortize compilation over >= 8 expected executions and\n"
      "statically-unsafe methods lose the remote candidate. wcec stacks\n"
      "DecisionPolicy{wcec_seed} on top: methods with a finite static energy\n"
      "ceiling (analysis/wcec.hpp) also amortize compilation when the bound\n"
      "itself pays for the compile, and remote execution is vetoed while the\n"
      "guaranteed local ceiling undercuts the fitted remote estimate.\n"
      "delta < 0 means the wcec seed saved energy versus cold start.");

  // Machine-readable record. Deterministic fields only (no wall-clock), so
  // the file is byte-identical at any JAVELIN_JOBS.
  std::FILE* f = std::fopen("BENCH_static.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write BENCH_static.json\n");
    return 1;
  }
  std::fprintf(f, "{\"bench\": \"ablation_static\", \"executions\": %d, "
               "\"cells\": [", executions);
  for (std::size_t app = 0; app < apps.size(); ++app) {
    for (std::size_t s = 0; s < kNumSituations; ++s) {
      const std::size_t base = (app * kNumSituations + s) * kNumVariants;
      const sim::StrategyResult& cold = results[base];
      const sim::StrategyResult& seeded = results[base + 1];
      const sim::StrategyResult& wcec = results[base + 2];
      std::fprintf(
          f,
          "%s\n  {\"app\": \"%s\", \"situation\": \"%s\", "
          "\"cold_energy_j\": %.6f, \"seeded_energy_j\": %.6f, "
          "\"wcec_energy_j\": %.6f, "
          "\"cold_remote\": %d, \"seeded_remote\": %d, \"wcec_remote\": %d, "
          "\"cold_compiles\": %d, \"seeded_compiles\": %d, "
          "\"wcec_compiles\": %d}",
          base ? "," : "", apps[app].name.c_str(),
          sim::situation_tag(situations[s]), cold.total_energy_j,
          seeded.total_energy_j, wcec.total_energy_j, remote_count(cold),
          remote_count(seeded), remote_count(wcec), cold.compiles,
          seeded.compiles, wcec.compiles);
    }
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);

  if (trace_path &&
      !obs::export_chrome_trace(collector, "ablation_static", trace_path))
    return 1;
  return 0;
}
