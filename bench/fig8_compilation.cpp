// Reproduces Fig 8: "Local and remote compilation energies. For each
// application, all values are normalized with respect to the energy consumed
// when local compilation with optimization Level1 is employed."
//
// Local columns: energy the client spends compiling the potential method's
// compilation plan at L1/L2/L3 (measured by the JIT's work meter). Remote
// columns C1..C4: energy to upload the compile request at that channel class
// and download the pre-compiled native image (whose size the compile service
// reports).
//
// Expected shape (paper Section 3.3): local compilation energy grows with
// the optimization level; remote compilation is often cheaper than local at
// the same level (especially under good channel conditions), and a more
// aggressive optimization can even *reduce* remote energy when it shrinks
// the code image.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "net/link.hpp"
#include "obs/export.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

using namespace javelin;

int main() {
  TextTable table(
      "Fig 8 — local vs remote compilation energy (normalized to local L1)");
  table.set_header({"app", "level", "local", "remote C1", "remote C2",
                    "remote C3", "remote C4", "code bytes"});

  const radio::CommModel comm;

  // Deploy-time profiling dominates this bench; fan it out per app. The
  // table is assembled in registry order from the app-indexed results, so
  // output is identical at any worker count.
  const auto& registry = apps::registry();
  sim::SweepEngine engine;
  const auto t0 = std::chrono::steady_clock::now();
  const auto runners =
      engine.map<std::shared_ptr<const sim::ScenarioRunner>>(
          registry.size(), [&registry](std::size_t i) {
            return std::make_shared<const sim::ScenarioRunner>(registry[i]);
          });

  for (std::size_t ai = 0; ai < registry.size(); ++ai) {
    const apps::App& a = registry[ai];
    const jvm::EnergyProfile& prof = runners[ai]->profile();
    const double base = prof.compile_energy[0];
    for (int level = 1; level <= 3; ++level) {
      const double local = prof.compile_energy[level - 1];
      const double code_bytes = prof.code_size_bytes[level - 1];
      std::vector<std::string> row{a.name, "L" + std::to_string(level),
                                   TextTable::num(100.0 * local / base, 1)};
      for (auto cls : {radio::PowerClass::kClass1, radio::PowerClass::kClass2,
                       radio::PowerClass::kClass3,
                       radio::PowerClass::kClass4}) {
        // Uplink: ~64-byte request at the PA class; downlink: code image.
        const double remote =
            comm.tx_energy(64, cls) +
            comm.rx_energy(static_cast<std::uint64_t>(code_bytes));
        row.push_back(TextTable::num(100.0 * remote / base, 1));
      }
      row.push_back(TextTable::num(code_bytes, 0));
      table.add_row(std::move(row));
    }
  }

  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nPaper shape check: local energy rises with optimization level; under\n"
      "good channels remote compilation often undercuts local compilation at\n"
      "the same level (e.g. the paper's db rows), enabling the AA strategy.");

  // Machine-readable perf trajectory record (cells = per-app profiling
  // fan-out), same schema as the Fig 7 BENCH_sweep.json record.
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const char* json_path = std::getenv("JAVELIN_BENCH_JSON");
  sim::write_sweep_json(json_path ? json_path : "BENCH_fig8.json",
                        "fig8_compilation", registry.size(), /*executions=*/1,
                        engine.jobs(), wall);
  std::fprintf(stderr, "[sweep] %zu cells, %d workers, %.2fs wall (%.2f cells/s)\n",
               registry.size(), engine.jobs(), wall,
               wall > 0.0 ? static_cast<double>(registry.size()) / wall : 0.0);

  // Opt-in Chrome-trace capture: the figure itself only reads deploy-time
  // profiles, so when a trace is requested run one traced L3 execution per
  // app — its kCompileBegin/End spans are the compilation-energy story this
  // figure tells. The table above is printed either way, unchanged.
  if (const char* trace_path = std::getenv("JAVELIN_TRACE_JSON")) {
    obs::TraceCollector collector;
    std::vector<obs::TraceBuffer*> tracks(registry.size(), nullptr);
    for (std::size_t ai = 0; ai < registry.size(); ++ai)
      tracks[ai] = collector.make_buffer(registry[ai].name + "/L3",
                                         /*order_key=*/ai);
    engine.map<int>(registry.size(), [&runners, &registry,
                                      &tracks](std::size_t ai) {
      runners[ai]->run_single(rt::Strategy::kLocal3, registry[ai].large_scale,
                              radio::PowerClass::kClass4, /*verify=*/true,
                              /*config=*/nullptr, tracks[ai]);
      return 0;
    });
    const std::string json = obs::chrome_trace_json(collector);
    std::string err;
    if (!obs::json_valid(json, &err)) {
      std::fprintf(stderr, "fig8: invalid trace JSON: %s\n", err.c_str());
      return 1;
    }
    if (!obs::write_file(trace_path, json)) return 1;
    std::fprintf(stderr, "[trace] %zu tracks -> %s (%zu bytes)\n",
                 collector.size(), trace_path, json.size());
  }
  return 0;
}
