// Reproduces Fig 7: "Average of normalized energy consumptions of eight
// benchmarks. Left eight bars: channel condition is predominantly good and
// one input size dominates. Middle: channel predominantly poor, one size
// dominates. Right: both channel condition and size parameters uniformly
// distributed. All values are normalized with respect to L1."
//
// Per the paper, each of the 24 scenarios (8 apps x 3 situations) executes
// the application 300 times with inputs and channel conditions drawn from
// the scenario's distribution; every strategy sees the same workload
// sequence. Expected shape: AL consumes less energy than every static
// strategy in all three situations (paper: 25% / 10% / 22% less than the
// best static, L2), and AA saves further energy via remote compilation.
//
// The 8 x 3 x 7 = 168 cells run on the parallel sweep engine; the figure
// tables are assembled from the cell-indexed grid, so the output is
// byte-identical at any JAVELIN_JOBS value. Telemetry (cells/sec, wall
// seconds, workers) is written to BENCH_sweep.json (override the path with
// JAVELIN_BENCH_JSON).
//
// Set JAVELIN_FIG7_EXECS to override the per-scenario execution count.

#include <cstdio>
#include <cstdlib>

#include "obs/export.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

using namespace javelin;

int main() {
  int execs = 300;
  if (const char* env = std::getenv("JAVELIN_FIG7_EXECS"))
    execs = std::atoi(env);

  constexpr rt::Strategy kStrategies[] = {
      rt::Strategy::kRemote,       rt::Strategy::kInterpret,
      rt::Strategy::kLocal1,       rt::Strategy::kLocal2,
      rt::Strategy::kLocal3,       rt::Strategy::kAdaptiveLocal,
      rt::Strategy::kAdaptiveAdaptive};
  constexpr sim::Situation kSituations[] = {
      sim::Situation::kGoodChannelDominantSize,
      sim::Situation::kPoorChannelDominantSize, sim::Situation::kUniform};

  sim::ScenarioSweepSpec spec;
  for (const apps::App& a : apps::registry()) spec.apps.push_back(&a);
  spec.situations.assign(std::begin(kSituations), std::end(kSituations));
  spec.strategies.assign(std::begin(kStrategies), std::end(kStrategies));
  spec.executions = execs;

  // Opt-in Chrome-trace capture: every sweep cell records into its own
  // track, so any cell is inspectable in chrome://tracing / Perfetto.
  // Tracing is read-only — the figure tables are bit-identical either way.
  obs::TraceCollector collector;
  const char* trace_path = std::getenv("JAVELIN_TRACE_JSON");
  if (trace_path) spec.collector = &collector;

  sim::SweepEngine engine;
  const sim::ScenarioSweepResult sweep = sim::run_scenario_sweep(
      engine, spec,
      [](const apps::App& a) {
        std::fprintf(stderr, "  [fig7] %s done\n", a.name.c_str());
      });

  // normalized[situation][strategy] accumulated over apps (normalized to L1
  // per app, then averaged — as in the paper's figure).
  double normalized[3][7] = {};
  int napps = 0;

  TextTable per_app("Fig 7 raw — per-app energy (mJ) for " +
                    std::to_string(execs) + " executions");
  per_app.set_header({"app", "situation", "R", "I", "L1", "L2", "L3", "AL",
                      "AA"});

  for (std::size_t ai = 0; ai < spec.apps.size(); ++ai) {
    const apps::App& a = *spec.apps[ai];
    for (int si = 0; si < 3; ++si) {
      double energy[7] = {};
      for (int st = 0; st < 7; ++st) {
        const sim::StrategyResult& r =
            sweep.at(ai, static_cast<std::size_t>(si),
                     static_cast<std::size_t>(st));
        if (!r.all_correct) {
          std::fprintf(stderr, "FAIL: %s under %s computed a wrong result\n",
                       a.name.c_str(), rt::strategy_name(kStrategies[st]));
          return 1;
        }
        energy[st] = r.total_energy_j;
      }
      const double l1 = energy[2];
      std::vector<std::string> row{a.name,
                                   std::to_string(si + 1)};
      for (int st = 0; st < 7; ++st) {
        row.push_back(TextTable::num(energy[st] * 1e3, 1));
        normalized[si][st] += energy[st] / l1;
      }
      per_app.add_row(std::move(row));
    }
    ++napps;
  }

  std::fputs(per_app.render().c_str(), stdout);

  TextTable fig("Fig 7 — average normalized energy (vs L1), eight benchmarks");
  fig.set_header({"situation", "R", "I", "L1", "L2", "L3", "AL", "AA"});
  for (int si = 0; si < 3; ++si) {
    std::vector<std::string> row{sim::situation_name(kSituations[si])};
    for (int st = 0; st < 7; ++st)
      row.push_back(TextTable::num(normalized[si][st] / napps, 3));
    fig.add_row(std::move(row));
  }
  std::fputs(fig.render().c_str(), stdout);

  // Headline numbers: AL and AA vs the best static strategy.
  std::puts("");
  for (int si = 0; si < 3; ++si) {
    double best_static = 1e300;
    int best_idx = 0;
    for (int st = 0; st < 5; ++st) {
      if (normalized[si][st] < best_static) {
        best_static = normalized[si][st];
        best_idx = st;
      }
    }
    const double al = normalized[si][5];
    const double aa = normalized[si][6];
    std::printf(
        "situation %d: best static = %s; AL saves %.1f%%, AA saves %.1f%% vs "
        "best static (paper: AL saves 25/10/22%% vs L2)\n",
        si + 1, rt::strategy_name(kStrategies[best_idx]),
        100.0 * (1.0 - al / best_static), 100.0 * (1.0 - aa / best_static));
  }

  // Machine-readable perf trajectory record (cells/sec, wall, workers).
  const char* json_path = std::getenv("JAVELIN_BENCH_JSON");
  sim::write_sweep_json(json_path ? json_path : "BENCH_sweep.json",
                        "fig7_adaptive", sweep, execs);
  std::fprintf(stderr,
               "[sweep] %zu cells, %d workers, %.2fs wall (%.2f cells/s)\n",
               sweep.cells.size(), sweep.jobs, sweep.wall_seconds,
               sweep.cells_per_second());

  if (trace_path) {
    const std::string json = obs::chrome_trace_json(collector);
    std::string err;
    if (!obs::json_valid(json, &err)) {
      std::fprintf(stderr, "fig7: invalid trace JSON: %s\n", err.c_str());
      return 1;
    }
    if (!obs::write_file(trace_path, json)) return 1;
    std::fprintf(stderr, "[trace] %zu tracks -> %s (%zu bytes)\n",
                 collector.size(), trace_path, json.size());
  }
  return 0;
}
