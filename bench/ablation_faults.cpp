// Ablation: fault injection x resilience policy (robustness study).
//
// The paper's protocol handles exactly one failure mode: a response missing
// past the timeout triggers local fallback (Section 3.2). This bench stresses
// the offloading runtime under richer fault episodes — Gilbert-Elliott burst
// loss, periodic server outages, payload corruption, latency spikes — and
// compares three client policies:
//   * paper (1 try):  the paper's semantics — one attempt, timeout fallback;
//   * retry x3:       bounded retries with exponential backoff;
//   * retry+breaker:  retries plus a circuit breaker that blacklists the
//                     remote path after consecutive failures and half-opens
//                     with a probe after a cooldown.
// Every failed attempt is charged its true radio + idle/power-down energy, so
// "wasted" below is real battery spend, not an abstract counter. Cells run on
// the parallel sweep engine; all fault decisions derive from per-cell seeds,
// so output (and BENCH_faults.json) is bit-identical at any JAVELIN_JOBS.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/export.hpp"
#include "sim/goldens.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

using namespace javelin;

int main() {
  const apps::App& fe = apps::app("fe");
  const int executions = 120;

  // Profile once; each fault case gets a cheap copy carrying its plan. The
  // fault-regime and resilience-policy grids are shared with the golden
  // trace suite (sim/goldens.hpp), so `javelin_tracediff check
  // ablation_faults` gates exactly the grid this table reports.
  const sim::ScenarioRunner base(fe);
  const auto& faults = sim::golden_fault_cases();
  const auto& policies = sim::golden_policy_cases();

  std::vector<sim::ScenarioRunner> runners;
  runners.reserve(faults.size());
  for (const sim::GoldenFaultCase& fc : faults) {
    runners.push_back(base);
    runners.back().fault_plan = fc.plan;
  }

  const std::size_t n = faults.size() * policies.size();

  // Opt-in Chrome-trace capture: one track per cell, created up front so the
  // parallel map only touches its own buffer. Tracing is read-only — the
  // table and BENCH_faults.json are bit-identical either way.
  obs::TraceCollector collector;
  const char* trace_path = std::getenv("JAVELIN_TRACE_JSON");
  std::vector<obs::TraceBuffer*> tracks(n, nullptr);
  if (trace_path) {
    for (std::size_t i = 0; i < n; ++i)
      tracks[i] = collector.make_buffer(
          std::string(faults[i / policies.size()].label) + "/" +
              policies[i % policies.size()].label,
          /*order_key=*/i);
  }

  sim::SweepEngine engine;
  const auto results = engine.map<sim::StrategyResult>(
      n, [&](std::size_t i) {
        const std::size_t fi = i / policies.size();
        const std::size_t pi = i % policies.size();
        rt::ClientConfig config = runners[fi].client_config;
        config.resilience = policies[pi].policy;
        return runners[fi].run(rt::Strategy::kAdaptiveAdaptive,
                               sim::Situation::kUniform, executions,
                               /*verify=*/true, &config, tracks[i]);
      });

  TextTable table("Ablation — fault injection x resilience policy (fe, AA)");
  table.set_header({"faults", "policy", "energy (J)", "remote", "fail",
                    "retry", "wasted (mJ)", "fallback", "brk o/c"});

  for (std::size_t i = 0; i < n; ++i) {
    const sim::StrategyResult& r = results[i];
    if (!r.all_correct) {
      std::fprintf(stderr, "FAIL: wrong result in cell %zu\n", i);
      return 1;
    }
    const auto it = r.mode_counts.find(rt::ExecMode::kRemote);
    const int remote = it == r.mode_counts.end() ? 0 : it->second;
    table.add_row({faults[i / policies.size()].label,
                   policies[i % policies.size()].label,
                   TextTable::num(r.total_energy_j, 3), std::to_string(remote),
                   std::to_string(r.remote_failures),
                   std::to_string(r.retries),
                   TextTable::num(r.wasted_retry_j * 1e3, 2),
                   std::to_string(r.fallbacks),
                   std::to_string(r.breaker_opened) + "/" +
                       std::to_string(r.breaker_reclosed)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nfail counts every failed exchange attempt by class; wasted is the\n"
      "client energy those attempts burnt. Under burst loss, retries convert\n"
      "timeout fallbacks back into (cheaper) remote executions; under heavy\n"
      "loss or outages the breaker stops paying for doomed attempts and the\n"
      "helper method degrades to local modes until a half-open probe heals.");

  // Machine-readable record. Deterministic fields only (no wall-clock), so
  // the file is byte-identical at any JAVELIN_JOBS.
  std::FILE* f = std::fopen("BENCH_faults.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write BENCH_faults.json\n");
    return 1;
  }
  std::fprintf(f, "{\"bench\": \"ablation_faults\", \"executions\": %d, "
               "\"cells\": [", executions);
  for (std::size_t i = 0; i < n; ++i) {
    const sim::StrategyResult& r = results[i];
    std::fprintf(
        f,
        "%s\n  {\"faults\": \"%s\", \"policy\": \"%s\", "
        "\"energy_j\": %.6f, \"remote_failures\": %d, \"retries\": %d, "
        "\"wasted_retry_j\": %.6f, \"fallbacks\": %d, "
        "\"breaker_opened\": %d, \"breaker_reclosed\": %d}",
        i ? "," : "", faults[i / policies.size()].label,
        policies[i % policies.size()].label, r.total_energy_j,
        r.remote_failures, r.retries, r.wasted_retry_j, r.fallbacks,
        r.breaker_opened, r.breaker_reclosed);
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);

  if (trace_path &&
      !obs::export_chrome_trace(collector, "ablation_faults", trace_path))
    return 1;
  return 0;
}
