// Ablation: fault injection x resilience policy (robustness study).
//
// The paper's protocol handles exactly one failure mode: a response missing
// past the timeout triggers local fallback (Section 3.2). This bench stresses
// the offloading runtime under richer fault episodes — Gilbert-Elliott burst
// loss, periodic server outages, payload corruption, latency spikes — and
// compares three client policies:
//   * paper (1 try):  the paper's semantics — one attempt, timeout fallback;
//   * retry x3:       bounded retries with exponential backoff;
//   * retry+breaker:  retries plus a circuit breaker that blacklists the
//                     remote path after consecutive failures and half-opens
//                     with a probe after a cooldown.
// Every failed attempt is charged its true radio + idle/power-down energy, so
// "wasted" below is real battery spend, not an abstract counter. Cells run on
// the parallel sweep engine; all fault decisions derive from per-cell seeds,
// so output (and BENCH_faults.json) is bit-identical at any JAVELIN_JOBS.

#include <cstdio>
#include <string>

#include "sim/sweep.hpp"
#include "support/table.hpp"

using namespace javelin;

namespace {

struct FaultCase {
  const char* label;
  net::FaultPlan plan;
};

struct PolicyCase {
  const char* label;
  rt::ResiliencePolicy policy;
};

std::vector<FaultCase> fault_cases() {
  std::vector<FaultCase> cases;
  cases.push_back({"fault-free", {}});

  net::FaultPlan mild;
  mild.enabled = true;
  mild.ge_p_good_to_bad = 0.05;
  mild.ge_p_bad_to_good = 0.5;
  mild.ge_loss_bad = 0.8;
  cases.push_back({"mild burst loss", mild});

  net::FaultPlan heavy;
  heavy.enabled = true;
  heavy.ge_p_good_to_bad = 0.15;
  heavy.ge_p_bad_to_good = 0.3;
  heavy.ge_loss_bad = 0.9;
  cases.push_back({"heavy burst loss", heavy});

  net::FaultPlan outage;
  outage.enabled = true;
  outage.outage_period_s = 30.0;
  outage.outage_duration_s = 6.0;
  outage.outage_phase_s = 10.0;
  cases.push_back({"server outages", outage});

  net::FaultPlan corrupt;
  corrupt.enabled = true;
  corrupt.corrupt_uplink_p = 0.08;
  corrupt.corrupt_downlink_p = 0.08;
  cases.push_back({"corruption", corrupt});

  net::FaultPlan works = mild;
  works.outage_period_s = 40.0;
  works.outage_duration_s = 5.0;
  works.corrupt_uplink_p = 0.04;
  works.corrupt_downlink_p = 0.04;
  works.spike_p = 0.05;
  works.spike_seconds = 0.4;
  cases.push_back({"the works", works});

  return cases;
}

std::vector<PolicyCase> policy_cases() {
  std::vector<PolicyCase> cases;
  cases.push_back({"paper (1 try)", {}});

  rt::ResiliencePolicy retry;
  retry.max_attempts = 3;
  cases.push_back({"retry x3", retry});

  rt::ResiliencePolicy breaker = retry;
  breaker.breaker_threshold = 4;
  breaker.breaker_cooldown_s = 20.0;
  cases.push_back({"retry+breaker", breaker});

  return cases;
}

}  // namespace

int main() {
  const apps::App& fe = apps::app("fe");
  const int executions = 120;

  // Profile once; each fault case gets a cheap copy carrying its plan.
  const sim::ScenarioRunner base(fe);
  const std::vector<FaultCase> faults = fault_cases();
  const std::vector<PolicyCase> policies = policy_cases();

  std::vector<sim::ScenarioRunner> runners;
  runners.reserve(faults.size());
  for (const FaultCase& fc : faults) {
    runners.push_back(base);
    runners.back().fault_plan = fc.plan;
  }

  const std::size_t n = faults.size() * policies.size();
  sim::SweepEngine engine;
  const auto results = engine.map<sim::StrategyResult>(
      n, [&](std::size_t i) {
        const std::size_t fi = i / policies.size();
        const std::size_t pi = i % policies.size();
        rt::ClientConfig config = runners[fi].client_config;
        config.resilience = policies[pi].policy;
        return runners[fi].run(rt::Strategy::kAdaptiveAdaptive,
                               sim::Situation::kUniform, executions,
                               /*verify=*/true, &config);
      });

  TextTable table("Ablation — fault injection x resilience policy (fe, AA)");
  table.set_header({"faults", "policy", "energy (J)", "remote", "fail",
                    "retry", "wasted (mJ)", "fallback", "brk o/c"});

  for (std::size_t i = 0; i < n; ++i) {
    const sim::StrategyResult& r = results[i];
    if (!r.all_correct) {
      std::fprintf(stderr, "FAIL: wrong result in cell %zu\n", i);
      return 1;
    }
    const auto it = r.mode_counts.find(rt::ExecMode::kRemote);
    const int remote = it == r.mode_counts.end() ? 0 : it->second;
    table.add_row({faults[i / policies.size()].label,
                   policies[i % policies.size()].label,
                   TextTable::num(r.total_energy_j, 3), std::to_string(remote),
                   std::to_string(r.remote_failures),
                   std::to_string(r.retries),
                   TextTable::num(r.wasted_retry_j * 1e3, 2),
                   std::to_string(r.fallbacks),
                   std::to_string(r.breaker_opened) + "/" +
                       std::to_string(r.breaker_reclosed)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nfail counts every failed exchange attempt by class; wasted is the\n"
      "client energy those attempts burnt. Under burst loss, retries convert\n"
      "timeout fallbacks back into (cheaper) remote executions; under heavy\n"
      "loss or outages the breaker stops paying for doomed attempts and the\n"
      "helper method degrades to local modes until a half-open probe heals.");

  // Machine-readable record. Deterministic fields only (no wall-clock), so
  // the file is byte-identical at any JAVELIN_JOBS.
  std::FILE* f = std::fopen("BENCH_faults.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write BENCH_faults.json\n");
    return 1;
  }
  std::fprintf(f, "{\"bench\": \"ablation_faults\", \"executions\": %d, "
               "\"cells\": [", executions);
  for (std::size_t i = 0; i < n; ++i) {
    const sim::StrategyResult& r = results[i];
    std::fprintf(
        f,
        "%s\n  {\"faults\": \"%s\", \"policy\": \"%s\", "
        "\"energy_j\": %.6f, \"remote_failures\": %d, \"retries\": %d, "
        "\"wasted_retry_j\": %.6f, \"fallbacks\": %d, "
        "\"breaker_opened\": %d, \"breaker_reclosed\": %d}",
        i ? "," : "", faults[i / policies.size()].label,
        policies[i % policies.size()].label, r.total_energy_j,
        r.remote_failures, r.retries, r.wasted_retry_j, r.fallbacks,
        r.breaker_opened, r.breaker_reclosed);
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  return 0;
}
