// Microbenchmarks (google-benchmark): raw throughput of the simulator's
// moving parts — interpreter dispatch, native executor, JIT compilation at
// each level, object serialization and the cache model. These gate how big a
// Fig 6/7 experiment the harness can afford; they are host-performance
// benchmarks, not guest-energy measurements.

#include <benchmark/benchmark.h>

#include <chrono>

#include "apps/app.hpp"
#include "jit/compiler.hpp"
#include "net/serializer.hpp"
#include "rt/device.hpp"

using namespace javelin;

namespace {

/// Host wall-clock in nanoseconds (steady_clock), for reporting host time
/// alongside the simulated-cycle counters: together they give the
/// cycles-simulated-per-host-second rate that gates sweep sizes.
double host_now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

rt::Device& shared_device() {
  static rt::Device* dev = [] {
    auto* d = new rt::Device(isa::client_machine());
    d->core.step_limit = ~0ULL;
    d->deploy(apps::app("sort").classes);
    return d;
  }();
  return *dev;
}

std::vector<jvm::Value> sort_args(rt::Device& dev, std::int32_t n) {
  Rng rng(42);
  return apps::app("sort").make_args(dev.vm, n, rng);
}

void BM_InterpreterDispatch(benchmark::State& state) {
  rt::Device& dev = shared_device();
  dev.engine.set_force_interpret(true);
  const std::int32_t mid = dev.vm.find_method("Sort", "sortcopy");
  for (auto _ : state) {
    const std::size_t mark = dev.arena.heap_mark();
    auto args = sort_args(dev, static_cast<std::int32_t>(state.range(0)));
    const std::uint64_t c0 = dev.core.steps;
    const std::uint64_t cy0 = dev.core.cycles;
    const double t0 = host_now_ns();
    benchmark::DoNotOptimize(dev.engine.invoke(mid, args));
    state.counters["host_wall_ns"] = host_now_ns() - t0;
    state.counters["guest_instrs"] = static_cast<double>(dev.core.steps - c0);
    state.counters["sim_cycles"] = static_cast<double>(dev.core.cycles - cy0);
    dev.arena.heap_release(mark);
  }
  dev.engine.set_force_interpret(false);
}
BENCHMARK(BM_InterpreterDispatch)->Arg(256)->Arg(1024);

void BM_NativeExecutor(benchmark::State& state) {
  rt::Device& dev = shared_device();
  const std::int32_t mid = dev.vm.find_method("Sort", "sortcopy");
  std::vector<std::int32_t> plan{mid};
  for (auto c : jit::collect_callees(dev.vm, mid)) plan.push_back(c);
  for (auto id : plan) {
    auto res = jit::compile_method(dev.vm, id,
                                   jit::CompileOptions{.opt_level = 2},
                                   dev.cfg.energy);
    dev.engine.install(id, std::move(res.program), 2);
  }
  for (auto _ : state) {
    const std::size_t mark = dev.arena.heap_mark();
    auto args = sort_args(dev, static_cast<std::int32_t>(state.range(0)));
    const std::uint64_t cy0 = dev.core.cycles;
    const double t0 = host_now_ns();
    benchmark::DoNotOptimize(dev.engine.invoke(mid, args));
    state.counters["host_wall_ns"] = host_now_ns() - t0;
    state.counters["sim_cycles"] = static_cast<double>(dev.core.cycles - cy0);
    dev.arena.heap_release(mark);
  }
  dev.engine.clear_code();
}
BENCHMARK(BM_NativeExecutor)->Arg(256)->Arg(1024);

void BM_JitCompile(benchmark::State& state) {
  rt::Device& dev = shared_device();
  const std::int32_t mid = dev.vm.find_method("Sort", "qsort");
  const int level = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto res = jit::compile_method(
        dev.vm, mid, jit::CompileOptions{.opt_level = level}, dev.cfg.energy);
    benchmark::DoNotOptimize(res.program.code.size());
    state.counters["native_instrs"] =
        static_cast<double>(res.program.code.size());
    state.counters["compile_energy_uJ"] = res.compile_energy * 1e6;
  }
}
BENCHMARK(BM_JitCompile)->Arg(1)->Arg(2)->Arg(3);

void BM_Serializer(benchmark::State& state) {
  rt::Device& dev = shared_device();
  const std::size_t mark = dev.arena.heap_mark();
  auto args = sort_args(dev, static_cast<std::int32_t>(state.range(0)));
  for (auto _ : state) {
    auto bytes = net::serialize_value(dev.vm, args[0], /*charge=*/false);
    benchmark::DoNotOptimize(bytes.size());
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(bytes.size()));
  }
  dev.arena.heap_release(mark);
}
BENCHMARK(BM_Serializer)->Arg(1024)->Arg(8192);

void BM_CacheModel(benchmark::State& state) {
  mem::DirectMappedCache cache({8 * 1024, 32});
  std::uint32_t addr = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr, (addr & 64) != 0));
    addr = addr * 1664525u + 1013904223u;
    addr = 16 + (addr % (1u << 22));
  }
}
BENCHMARK(BM_CacheModel);

}  // namespace

BENCHMARK_MAIN();
