// Microbenchmarks (google-benchmark): raw throughput of the simulator's
// moving parts — interpreter dispatch, native executor, JIT compilation at
// each level, object serialization and the cache model. These gate how big a
// Fig 6/7 experiment the harness can afford; they are host-performance
// benchmarks, not guest-energy measurements.
//
// On startup the bench also runs a dispatch-flavor comparison (hand switch
// vs computed goto vs L0.5 baseline stream) over the whole 8-app corpus and
// writes the result to BENCH_dispatch.json (override the path with
// JAVELIN_DISPATCH_JSON; set JAVELIN_DISPATCH_BENCH=0 to skip it), plus the
// native-executor twin (switch vs goto vs fused superinstruction stream,
// whole corpus JIT-compiled at L2) written to BENCH_nexec.json as
// sweep-schema records per flavor (JAVELIN_NEXEC_JSON / JAVELIN_NEXEC_BENCH
// to override / skip).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "apps/app.hpp"
#include "jit/compiler.hpp"
#include "net/serializer.hpp"
#include "rt/device.hpp"

using namespace javelin;

namespace {

/// Host wall-clock in nanoseconds (steady_clock), for reporting host time
/// alongside the simulated-cycle counters: together they give the
/// cycles-simulated-per-host-second rate that gates sweep sizes.
double host_now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

rt::Device& shared_device() {
  static rt::Device* dev = [] {
    auto* d = new rt::Device(isa::client_machine());
    d->core.step_limit = ~0ULL;
    d->deploy(apps::app("sort").classes);
    return d;
  }();
  return *dev;
}

std::vector<jvm::Value> sort_args(rt::Device& dev, std::int32_t n) {
  Rng rng(42);
  return apps::app("sort").make_args(dev.vm, n, rng);
}

void BM_InterpreterDispatch(benchmark::State& state) {
  rt::Device& dev = shared_device();
  dev.engine.set_force_interpret(true);
  const std::int32_t mid = dev.vm.find_method("Sort", "sortcopy");
  for (auto _ : state) {
    const std::size_t mark = dev.arena.heap_mark();
    auto args = sort_args(dev, static_cast<std::int32_t>(state.range(0)));
    const std::uint64_t c0 = dev.core.steps;
    const std::uint64_t cy0 = dev.core.cycles;
    const double t0 = host_now_ns();
    benchmark::DoNotOptimize(dev.engine.invoke(mid, args));
    state.counters["host_wall_ns"] = host_now_ns() - t0;
    state.counters["guest_instrs"] = static_cast<double>(dev.core.steps - c0);
    state.counters["sim_cycles"] = static_cast<double>(dev.core.cycles - cy0);
    dev.arena.heap_release(mark);
  }
  dev.engine.set_force_interpret(false);
}
BENCHMARK(BM_InterpreterDispatch)->Arg(256)->Arg(1024);

void BM_NativeExecutor(benchmark::State& state) {
  rt::Device& dev = shared_device();
  const std::int32_t mid = dev.vm.find_method("Sort", "sortcopy");
  std::vector<std::int32_t> plan{mid};
  for (auto c : jit::collect_callees(dev.vm, mid)) plan.push_back(c);
  for (auto id : plan) {
    auto res = jit::compile_method(dev.vm, id,
                                   jit::CompileOptions{.opt_level = 2},
                                   dev.cfg.energy);
    dev.engine.install(id, std::move(res.program), 2);
  }
  for (auto _ : state) {
    const std::size_t mark = dev.arena.heap_mark();
    auto args = sort_args(dev, static_cast<std::int32_t>(state.range(0)));
    const std::uint64_t cy0 = dev.core.cycles;
    const double t0 = host_now_ns();
    benchmark::DoNotOptimize(dev.engine.invoke(mid, args));
    state.counters["host_wall_ns"] = host_now_ns() - t0;
    state.counters["sim_cycles"] = static_cast<double>(dev.core.cycles - cy0);
    dev.arena.heap_release(mark);
  }
  dev.engine.clear_code();
}
BENCHMARK(BM_NativeExecutor)->Arg(256)->Arg(1024);

void BM_JitCompile(benchmark::State& state) {
  rt::Device& dev = shared_device();
  const std::int32_t mid = dev.vm.find_method("Sort", "qsort");
  const int level = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto res = jit::compile_method(
        dev.vm, mid, jit::CompileOptions{.opt_level = level}, dev.cfg.energy);
    benchmark::DoNotOptimize(res.program.code.size());
    state.counters["native_instrs"] =
        static_cast<double>(res.program.code.size());
    state.counters["compile_energy_uJ"] = res.compile_energy * 1e6;
  }
}
BENCHMARK(BM_JitCompile)->Arg(1)->Arg(2)->Arg(3);

void BM_Serializer(benchmark::State& state) {
  rt::Device& dev = shared_device();
  const std::size_t mark = dev.arena.heap_mark();
  auto args = sort_args(dev, static_cast<std::int32_t>(state.range(0)));
  for (auto _ : state) {
    auto bytes = net::serialize_value(dev.vm, args[0], /*charge=*/false);
    benchmark::DoNotOptimize(bytes.size());
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(bytes.size()));
  }
  dev.arena.heap_release(mark);
}
BENCHMARK(BM_Serializer)->Arg(1024)->Arg(8192);

void BM_CacheModel(benchmark::State& state) {
  mem::DirectMappedCache cache({8 * 1024, 32});
  std::uint32_t addr = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr, (addr & 64) != 0));
    addr = addr * 1664525u + 1013904223u;
    addr = 16 + (addr % (1u << 22));
  }
}
BENCHMARK(BM_CacheModel);

/// Interpreter dispatch flavors head-to-head on one app (sortcopy):
/// 0 = hand switch, 1 = computed goto, 2 = L0.5 baseline stream.
void BM_DispatchFlavor(benchmark::State& state) {
  rt::Device& dev = shared_device();
  dev.engine.set_force_interpret(true);
  const jvm::DispatchMode saved = dev.engine.dispatch_mode();
  dev.engine.set_dispatch_mode(
      static_cast<jvm::DispatchMode>(state.range(0)));
  const std::int32_t mid = dev.vm.find_method("Sort", "sortcopy");
  for (auto _ : state) {
    const std::size_t mark = dev.arena.heap_mark();
    auto args = sort_args(dev, 1024);
    const std::uint64_t c0 = dev.core.steps;
    benchmark::DoNotOptimize(dev.engine.invoke(mid, args));
    state.counters["guest_instrs"] = static_cast<double>(dev.core.steps - c0);
    dev.arena.heap_release(mark);
  }
  dev.engine.set_dispatch_mode(saved);
  dev.engine.set_force_interpret(false);
}
BENCHMARK(BM_DispatchFlavor)->Arg(0)->Arg(1)->Arg(2);

/// One pass of the whole 8-app corpus under `mode`: fresh device per app,
/// force-interpret, invoke the potential method at the smallest profiling
/// scale `reps` times. Returns host wall seconds; accumulates guest
/// bytecodes retired into *bytecodes (identical across modes by
/// construction — the stream replays the same charge sequence).
double corpus_pass(jvm::DispatchMode mode, int reps, double* bytecodes) {
  double wall = 0.0;
  for (const apps::App& a : apps::registry()) {
    rt::Device dev(isa::client_machine());
    dev.core.step_limit = ~0ULL;
    dev.deploy(a.classes);
    dev.engine.set_force_interpret(true);
    dev.engine.set_dispatch_mode(mode);
    const std::int32_t mid = dev.vm.find_method(a.cls, a.method);
    const double scale =
        a.profile_scales.empty() ? a.small_scale : a.profile_scales.front();
    for (int r = 0; r < reps; ++r) {
      Rng rng(1234 + static_cast<std::uint64_t>(r));
      const std::size_t mark = dev.arena.heap_mark();
      auto args = a.make_args(dev.vm, scale, rng);
      const std::uint64_t c0 = dev.core.steps;
      const double t0 = host_now_ns();
      benchmark::DoNotOptimize(dev.engine.invoke(mid, args));
      wall += (host_now_ns() - t0) * 1e-9;
      if (bytecodes) *bytecodes += static_cast<double>(dev.core.steps - c0);
      dev.arena.heap_release(mark);
    }
  }
  return wall;
}

/// Corpus-wide dispatch comparison -> BENCH_dispatch.json. Schema:
///   {"bench": "dispatch", "reps": R,
///    "modes": [{"mode": "switch", "wall_seconds": S,
///               "guest_instrs": N, "instrs_per_second": IPS}, ...],
///    "speedup_goto": X, "speedup_baseline": Y}   (both vs switch)
void run_dispatch_corpus() {
  if (const char* env = std::getenv("JAVELIN_DISPATCH_BENCH"))
    if (env[0] == '0') return;
  int reps = 3;
  if (const char* env = std::getenv("JAVELIN_DISPATCH_REPS"))
    reps = std::atoi(env) >= 1 ? std::atoi(env) : reps;

  constexpr jvm::DispatchMode kModes[] = {jvm::DispatchMode::kSwitch,
                                          jvm::DispatchMode::kGoto,
                                          jvm::DispatchMode::kBaseline};
  double wall[3] = {};
  double instrs[3] = {};
  corpus_pass(jvm::DispatchMode::kSwitch, 1, nullptr);  // warm-up pass
  for (int i = 0; i < 3; ++i) {
    wall[i] = corpus_pass(kModes[i], reps, &instrs[i]);
    std::fprintf(stderr, "[dispatch] %-8s %.3fs wall, %.0f guest instrs "
                 "(%.2fM instrs/s)\n",
                 jvm::dispatch_mode_name(kModes[i]), wall[i], instrs[i],
                 wall[i] > 0.0 ? instrs[i] / wall[i] * 1e-6 : 0.0);
  }

  const char* path = std::getenv("JAVELIN_DISPATCH_JSON");
  std::FILE* f = std::fopen(path ? path : "BENCH_dispatch.json", "w");
  if (!f) return;
  std::fprintf(f, "{\"bench\": \"dispatch\", \"reps\": %d, \"modes\": [", reps);
  for (int i = 0; i < 3; ++i)
    std::fprintf(f,
                 "%s{\"mode\": \"%s\", \"wall_seconds\": %.4f, "
                 "\"guest_instrs\": %.0f, \"instrs_per_second\": %.0f}",
                 i ? ", " : "", jvm::dispatch_mode_name(kModes[i]), wall[i],
                 instrs[i], wall[i] > 0.0 ? instrs[i] / wall[i] : 0.0);
  std::fprintf(f, "], \"speedup_goto\": %.3f, \"speedup_baseline\": %.3f}\n",
               wall[1] > 0.0 ? wall[0] / wall[1] : 0.0,
               wall[2] > 0.0 ? wall[0] / wall[2] : 0.0);
  std::fclose(f);
}

/// One pass of the whole 8-app corpus through the native executor under
/// `mode`: fresh device per app, whole compilation plan JIT-compiled at L2,
/// invoke the potential method at the smallest profiling scale `reps` times.
/// Returns host wall seconds spent inside invoke().
double corpus_pass_native(isa::NExecMode mode, int reps) {
  double wall = 0.0;
  for (const apps::App& a : apps::registry()) {
    rt::Device dev(isa::client_machine());
    dev.core.step_limit = ~0ULL;
    dev.deploy(a.classes);
    const std::int32_t mid = dev.vm.find_method(a.cls, a.method);
    std::vector<std::int32_t> plan{mid};
    for (std::int32_t callee : jit::collect_callees(dev.vm, mid))
      plan.push_back(callee);
    for (std::int32_t id : plan) {
      auto res = jit::compile_method(dev.vm, id,
                                     jit::CompileOptions{.opt_level = 2},
                                     dev.cfg.energy);
      dev.engine.install(id, std::move(res.program), 2);
    }
    dev.engine.set_nexec_mode(mode);
    const double scale =
        a.profile_scales.empty() ? a.small_scale : a.profile_scales.front();
    for (int r = 0; r < reps; ++r) {
      Rng rng(1234 + static_cast<std::uint64_t>(r));
      const std::size_t mark = dev.arena.heap_mark();
      auto args = a.make_args(dev.vm, scale, rng);
      const double t0 = host_now_ns();
      benchmark::DoNotOptimize(dev.engine.invoke(mid, args));
      wall += (host_now_ns() - t0) * 1e-9;
      dev.arena.heap_release(mark);
    }
  }
  return wall;
}

/// Corpus-wide native dispatch comparison -> BENCH_nexec.json. One
/// sweep-schema record per flavor (cells = apps, executions = reps):
///   {"bench": "nexec", "reps": R,
///    "modes": [{"bench": "nexec_switch", "cells": 8, "executions": R,
///               "jobs": 1, "wall_seconds": S, "cells_per_second": C}, ...],
///    "speedup_goto": X, "speedup_fused": Y}   (both vs switch)
void run_nexec_corpus() {
  if (const char* env = std::getenv("JAVELIN_NEXEC_BENCH"))
    if (env[0] == '0') return;
  int reps = 20;
  if (const char* env = std::getenv("JAVELIN_NEXEC_REPS"))
    reps = std::atoi(env) >= 1 ? std::atoi(env) : reps;

  constexpr isa::NExecMode kModes[] = {isa::NExecMode::kSwitch,
                                       isa::NExecMode::kGoto,
                                       isa::NExecMode::kFused};
  const std::size_t napps = apps::registry().size();
  double wall[3] = {};
  corpus_pass_native(isa::NExecMode::kSwitch, 1);  // warm-up pass
  for (int i = 0; i < 3; ++i) {
    wall[i] = corpus_pass_native(kModes[i], reps);
    std::fprintf(stderr,
                 "[nexec] %-6s %.3fs wall (%.1f invocations/s)\n",
                 isa::nexec_mode_name(kModes[i]), wall[i],
                 wall[i] > 0.0
                     ? static_cast<double>(napps) * reps / wall[i]
                     : 0.0);
  }

  const char* path = std::getenv("JAVELIN_NEXEC_JSON");
  std::FILE* f = std::fopen(path ? path : "BENCH_nexec.json", "w");
  if (!f) return;
  std::fprintf(f, "{\"bench\": \"nexec\", \"reps\": %d, \"modes\": [", reps);
  for (int i = 0; i < 3; ++i)
    std::fprintf(f,
                 "%s{\"bench\": \"nexec_%s\", \"cells\": %zu, "
                 "\"executions\": %d, \"jobs\": 1, \"wall_seconds\": %.4f, "
                 "\"cells_per_second\": %.3f}",
                 i ? ", " : "", isa::nexec_mode_name(kModes[i]), napps, reps,
                 wall[i],
                 wall[i] > 0.0 ? static_cast<double>(napps) / wall[i] : 0.0);
  std::fprintf(f, "], \"speedup_goto\": %.3f, \"speedup_fused\": %.3f}\n",
               wall[1] > 0.0 ? wall[0] / wall[1] : 0.0,
               wall[2] > 0.0 ? wall[0] / wall[2] : 0.0);
  std::fclose(f);
}

/// Native executor dispatch flavors head-to-head on one app (sortcopy at
/// L2): 0 = hand switch, 1 = computed goto, 2 = fused stream.
void BM_NExecFlavor(benchmark::State& state) {
  rt::Device& dev = shared_device();
  const std::int32_t mid = dev.vm.find_method("Sort", "sortcopy");
  std::vector<std::int32_t> plan{mid};
  for (auto c : jit::collect_callees(dev.vm, mid)) plan.push_back(c);
  for (auto id : plan) {
    auto res = jit::compile_method(dev.vm, id,
                                   jit::CompileOptions{.opt_level = 2},
                                   dev.cfg.energy);
    dev.engine.install(id, std::move(res.program), 2);
  }
  const isa::NExecMode saved = dev.engine.nexec_mode();
  dev.engine.set_nexec_mode(static_cast<isa::NExecMode>(state.range(0)));
  for (auto _ : state) {
    const std::size_t mark = dev.arena.heap_mark();
    auto args = sort_args(dev, 1024);
    const std::uint64_t cy0 = dev.core.cycles;
    benchmark::DoNotOptimize(dev.engine.invoke(mid, args));
    state.counters["sim_cycles"] = static_cast<double>(dev.core.cycles - cy0);
    dev.arena.heap_release(mark);
  }
  dev.engine.set_nexec_mode(saved);
  dev.engine.clear_code();
}
BENCHMARK(BM_NExecFlavor)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  run_dispatch_corpus();
  run_nexec_corpus();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
