// Demonstrates the cross-layer tracing subsystem (DESIGN.md §10) on the
// paper's fe (FFT edge-detect) benchmark under the AA strategy.
//
// Two tracks are recorded into one TraceCollector:
//  * "fe/good/AA"        — the fault-free good-channel scenario;
//  * "fe/good/AA+faults" — the same workload under a burst-loss / outage /
//                          corruption / latency-spike schedule with a
//                          3-attempt retry policy and a circuit breaker, so
//                          the trace shows retries, wasted-energy ledgers and
//                          breaker transitions.
//
// Outputs:
//  * BENCH_trace.json (override with JAVELIN_TRACE_JSON) — Chrome trace-event
//    JSON, loadable in chrome://tracing or Perfetto; validated with the
//    built-in JSON checker before writing.
//  * stdout — the Prometheus text-format metrics aggregated from both tracks.
//
// Tracing is read-only: the StrategyResults printed at the end are
// bit-identical to an untraced run (tests/trace_determinism_test.cpp pins
// this). Set JAVELIN_TRACE_EXECS to change the per-track execution count.

#include <cstdio>
#include <cstdlib>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "sim/sweep.hpp"

using namespace javelin;

int main() {
  int execs = 40;
  if (const char* env = std::getenv("JAVELIN_TRACE_EXECS"))
    execs = std::atoi(env);

  const apps::App* fe = nullptr;
  for (const apps::App& a : apps::registry())
    if (a.name == "fe") fe = &a;
  if (!fe) {
    std::fprintf(stderr, "trace_demo: no 'fe' app in the registry\n");
    return 1;
  }

  obs::TraceCollector collector;

  // Track 0: fault-free fe/AA under the good-channel situation.
  sim::ScenarioRunner runner(*fe);
  obs::TraceBuffer* clean =
      collector.make_buffer("fe/good/AA", /*order_key=*/0);
  const sim::StrategyResult clean_result =
      runner.run(rt::Strategy::kAdaptiveAdaptive,
                 sim::Situation::kGoodChannelDominantSize, execs,
                 /*verify=*/true, /*config=*/nullptr, clean);

  // Track 1: the same workload under faults, with retries and a breaker.
  sim::ScenarioRunner faulted(*fe);
  faulted.fault_plan.enabled = true;
  faulted.fault_plan.ge_p_good_to_bad = 0.08;
  faulted.fault_plan.ge_loss_bad = 0.8;
  faulted.fault_plan.outage_period_s = 40.0;
  faulted.fault_plan.outage_duration_s = 4.0;
  faulted.fault_plan.corrupt_downlink_p = 0.05;
  faulted.fault_plan.spike_p = 0.05;
  faulted.fault_plan.spike_seconds = 1.0;
  faulted.client_config.resilience.max_attempts = 3;
  faulted.client_config.resilience.breaker_threshold = 4;
  faulted.client_config.resilience.breaker_cooldown_s = 5.0;
  obs::TraceBuffer* dirty =
      collector.make_buffer("fe/good/AA+faults", /*order_key=*/1);
  const sim::StrategyResult faulted_result =
      faulted.run(rt::Strategy::kAdaptiveAdaptive,
                  sim::Situation::kGoodChannelDominantSize, execs,
                  /*verify=*/true, /*config=*/nullptr, dirty);

  // Export: validate, then write the Chrome trace.
  const std::string json = obs::chrome_trace_json(collector);
  std::string err;
  if (!obs::json_valid(json, &err)) {
    std::fprintf(stderr, "trace_demo: invalid trace JSON: %s\n", err.c_str());
    return 1;
  }
  const char* path_env = std::getenv("JAVELIN_TRACE_JSON");
  const std::string path = path_env ? path_env : "BENCH_trace.json";
  if (!obs::write_file(path, json)) return 1;

  // Prometheus metrics for both tracks.
  std::fputs(obs::build_metrics(collector).prometheus_text().c_str(), stdout);

  std::fprintf(stderr,
               "[trace] %zu tracks, %zu + %zu events -> %s (%zu bytes)\n",
               collector.size(), clean->events().size(),
               dirty->events().size(), path.c_str(), json.size());
  std::fprintf(stderr,
               "[trace] fe/AA energy: clean %.3f mJ, faulted %.3f mJ "
               "(%d retries, %d failures, %.3f mJ wasted)\n",
               clean_result.total_energy_j * 1e3,
               faulted_result.total_energy_j * 1e3, faulted_result.retries,
               faulted_result.remote_failures,
               faulted_result.wasted_retry_j * 1e3);
  if (!clean_result.all_correct || !faulted_result.all_correct) {
    std::fprintf(stderr, "trace_demo: wrong results\n");
    return 1;
  }
  return 0;
}
