// Reproduces Fig 6: "Energy consumption of three benchmarks with static
// execution strategies. The energies are normalized with respect to L1. For
// each benchmark, left five bars: small input size, right five bars: large
// input size. The stacked bars labeled R indicate the remote execution
// energies under Class 4, Class 3, Class 2, and Class 1 channel conditions."
//
// Each cell is a single application execution (compilation energy included,
// as in the paper: "the energy numbers presented in this subsection include
// the energy cost of loading and initializing the compiler classes").
//
// Expected shape (paper Section 3.1): for the small input, R is preferable
// under good channel conditions but degrades sharply toward Class 1, where
// local interpretation wins (compilation cost dominates small runs); for the
// large input, compiled local execution (L2) becomes the best strategy.

#include <cstdio>
#include <cstdlib>

#include "sim/scenario.hpp"
#include "support/table.hpp"

using namespace javelin;

int main() {
  const char* names[] = {"fe", "mf", "hpf"};

  TextTable table("Fig 6 — static strategies, energy normalized to L1");
  table.set_header({"app", "input", "R@C4", "R@C3", "R@C2", "R@C1", "I", "L1",
                    "L2", "L3", "best"});

  for (const char* name : names) {
    const apps::App& a = apps::app(name);
    sim::ScenarioRunner runner(a);
    for (const bool large : {false, true}) {
      const double scale = large ? a.large_scale : a.small_scale;
      double l1 = 0.0;
      std::vector<std::pair<std::string, double>> cells;
      for (auto cls : {radio::PowerClass::kClass4, radio::PowerClass::kClass3,
                       radio::PowerClass::kClass2, radio::PowerClass::kClass1}) {
        const auto r = runner.run_single(rt::Strategy::kRemote, scale, cls);
        if (!r.all_correct) {
          std::fprintf(stderr,
                       "FAIL: %s remote produced a wrong result "
                       "(scale=%g class=%d)\n",
                       name, scale, static_cast<int>(cls));
          return 1;
        }
        cells.emplace_back(std::string("R@") + radio::power_class_name(cls),
                           r.total_energy_j);
      }
      for (auto strat : {rt::Strategy::kInterpret, rt::Strategy::kLocal1,
                         rt::Strategy::kLocal2, rt::Strategy::kLocal3}) {
        const auto r = runner.run_single(strat, scale,
                                         radio::PowerClass::kClass4);
        if (!r.all_correct) {
          std::fprintf(stderr, "FAIL: %s %s produced a wrong result\n", name,
                       rt::strategy_name(strat));
          return 1;
        }
        if (strat == rt::Strategy::kLocal1) l1 = r.total_energy_j;
        cells.emplace_back(rt::strategy_name(strat), r.total_energy_j);
      }

      std::vector<std::string> row{name, large ? "large" : "small"};
      std::string best = "?";
      double best_e = 1e300;
      for (const auto& [label, e] : cells) {
        row.push_back(TextTable::num(e / l1, 2));
        if (e < best_e) {
          best_e = e;
          best = label;
        }
      }
      row.push_back(best);
      table.add_row(std::move(row));
    }
  }

  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nPaper shape check: small input -> R preferable under good channel\n"
      "conditions, degrading toward Class 1 where interpretation wins; large\n"
      "input -> compiled local execution (L2) wins.");
  return 0;
}
