// Reproduces Fig 6: "Energy consumption of three benchmarks with static
// execution strategies. The energies are normalized with respect to L1. For
// each benchmark, left five bars: small input size, right five bars: large
// input size. The stacked bars labeled R indicate the remote execution
// energies under Class 4, Class 3, Class 2, and Class 1 channel conditions."
//
// Each cell is a single application execution (compilation energy included,
// as in the paper: "the energy numbers presented in this subsection include
// the energy cost of loading and initializing the compiler classes").
//
// Cells (3 apps x 2 inputs x 8 strategy/channel variants) run on the
// parallel sweep engine; every cell's seed derives from its coordinates, so
// the table is identical at any JAVELIN_JOBS value.
//
// Expected shape (paper Section 3.1): for the small input, R is preferable
// under good channel conditions but degrades sharply toward Class 1, where
// local interpretation wins (compilation cost dominates small runs); for the
// large input, compiled local execution (L2) becomes the best strategy.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

using namespace javelin;

namespace {

struct Variant {
  const char* label;
  rt::Strategy strategy;
  radio::PowerClass channel;
};

}  // namespace

int main() {
  const char* names[] = {"fe", "mf", "hpf"};
  const Variant variants[] = {
      {"R@Class 4", rt::Strategy::kRemote, radio::PowerClass::kClass4},
      {"R@Class 3", rt::Strategy::kRemote, radio::PowerClass::kClass3},
      {"R@Class 2", rt::Strategy::kRemote, radio::PowerClass::kClass2},
      {"R@Class 1", rt::Strategy::kRemote, radio::PowerClass::kClass1},
      {"I", rt::Strategy::kInterpret, radio::PowerClass::kClass4},
      {"L1", rt::Strategy::kLocal1, radio::PowerClass::kClass4},
      {"L2", rt::Strategy::kLocal2, radio::PowerClass::kClass4},
      {"L3", rt::Strategy::kLocal3, radio::PowerClass::kClass4},
  };
  constexpr std::size_t kNumApps = std::size(names);
  constexpr std::size_t kNumVariants = std::size(variants);

  sim::SweepEngine engine;
  const auto t0 = std::chrono::steady_clock::now();

  // Profile each app once, in parallel; cells share the immutable runners.
  const auto runners = engine.map<std::shared_ptr<const sim::ScenarioRunner>>(
      kNumApps, [&names](std::size_t i) {
        return std::make_shared<const sim::ScenarioRunner>(
            apps::app(names[i]));
      });

  // Cell grid: [app][input][variant], app-major.
  const std::size_t n_cells = kNumApps * 2 * kNumVariants;

  // Opt-in Chrome-trace capture: one track per cell (created up front, so
  // the parallel map only ever touches its own buffer). Tracing is
  // read-only — the figure table is bit-identical either way.
  obs::TraceCollector collector;
  const char* trace_path = std::getenv("JAVELIN_TRACE_JSON");
  std::vector<obs::TraceBuffer*> tracks(n_cells, nullptr);
  if (trace_path) {
    for (std::size_t cell = 0; cell < n_cells; ++cell) {
      const std::size_t app = cell / (2 * kNumVariants);
      const bool large = (cell / kNumVariants) % 2 != 0;
      const Variant& v = variants[cell % kNumVariants];
      tracks[cell] = collector.make_buffer(
          std::string(names[app]) + "/" + (large ? "large" : "small") + "/" +
              v.label,
          /*order_key=*/cell);
    }
  }

  const auto cells = engine.map<sim::StrategyResult>(
      n_cells, [&runners, &variants, &names, &tracks](std::size_t cell) {
        const std::size_t app = cell / (2 * kNumVariants);
        const bool large = (cell / kNumVariants) % 2 != 0;
        const Variant& v = variants[cell % kNumVariants];
        const apps::App& a = apps::app(names[app]);
        return runners[app]->run_single(
            v.strategy, large ? a.large_scale : a.small_scale, v.channel,
            /*verify=*/true, /*config=*/nullptr, tracks[cell]);
      });

  TextTable table("Fig 6 — static strategies, energy normalized to L1");
  table.set_header({"app", "input", "R@C4", "R@C3", "R@C2", "R@C1", "I", "L1",
                    "L2", "L3", "best"});

  for (std::size_t app = 0; app < kNumApps; ++app) {
    for (const bool large : {false, true}) {
      double l1 = 0.0;
      std::vector<std::pair<std::string, double>> row_cells;
      for (std::size_t vi = 0; vi < kNumVariants; ++vi) {
        const sim::StrategyResult& r =
            cells[(app * 2 + (large ? 1 : 0)) * kNumVariants + vi];
        if (!r.all_correct) {
          std::fprintf(stderr, "FAIL: %s %s produced a wrong result (%s)\n",
                       names[app], variants[vi].label,
                       large ? "large" : "small");
          return 1;
        }
        if (variants[vi].strategy == rt::Strategy::kLocal1)
          l1 = r.total_energy_j;
        row_cells.emplace_back(variants[vi].label, r.total_energy_j);
      }

      std::vector<std::string> row{names[app], large ? "large" : "small"};
      std::string best = "?";
      double best_e = 1e300;
      for (const auto& [label, e] : row_cells) {
        row.push_back(TextTable::num(e / l1, 2));
        if (e < best_e) {
          best_e = e;
          best = label;
        }
      }
      row.push_back(best);
      table.add_row(std::move(row));
    }
  }

  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nPaper shape check: small input -> R preferable under good channel\n"
      "conditions, degrading toward Class 1 where interpretation wins; large\n"
      "input -> compiled local execution (L2) wins.");

  // Machine-readable perf trajectory record (cells/sec, wall, workers),
  // same schema as the Fig 7 BENCH_sweep.json record.
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const char* json_path = std::getenv("JAVELIN_BENCH_JSON");
  sim::write_sweep_json(json_path ? json_path : "BENCH_fig6.json",
                        "fig6_static_strategies", n_cells, /*executions=*/1,
                        engine.jobs(), wall);
  std::fprintf(stderr, "[sweep] %zu cells, %d workers, %.2fs wall (%.2f cells/s)\n",
               n_cells, engine.jobs(), wall,
               wall > 0.0 ? static_cast<double>(n_cells) / wall : 0.0);

  if (trace_path) {
    const std::string json = obs::chrome_trace_json(collector);
    std::string err;
    if (!obs::json_valid(json, &err)) {
      std::fprintf(stderr, "fig6: invalid trace JSON: %s\n", err.c_str());
      return 1;
    }
    if (!obs::write_file(trace_path, json)) return 1;
    std::fprintf(stderr, "[trace] %zu tracks -> %s (%zu bytes)\n",
                 collector.size(), trace_path, json.size());
  }
  return 0;
}
