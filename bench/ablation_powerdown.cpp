// Ablation: the power-down mechanism (paper Section 2: during remote
// execution the processor, memory and receiver are powered down; leakage is
// 10% of normal power; the server's mobile status table queues responses
// until the client wakes).
//
// Compares client energy for the Remote strategy with power-down enabled vs
// disabled, and reports the idle-energy share. Apps whose server time is
// longer benefit more.

#include <cstdio>

#include "sim/scenario.hpp"
#include "support/table.hpp"

using namespace javelin;

int main() {
  TextTable table("Ablation — power-down during remote execution (Class 4)");
  table.set_header({"app", "scale", "E powered-down (mJ)", "E awake (mJ)",
                    "saving", "idle share (pd)"});

  for (const char* name : {"fe", "pf", "mf", "hpf", "ed", "sort"}) {
    const apps::App& a = apps::app(name);
    sim::ScenarioRunner runner(a);
    const double scale = a.large_scale;

    runner.client_config.powerdown = true;
    const auto with_pd = runner.run_single(rt::Strategy::kRemote, scale,
                                           radio::PowerClass::kClass4);
    runner.client_config.powerdown = false;
    const auto without = runner.run_single(rt::Strategy::kRemote, scale,
                                           radio::PowerClass::kClass4);
    if (!with_pd.all_correct || !without.all_correct) {
      std::fprintf(stderr, "FAIL: wrong result in %s\n", name);
      return 1;
    }
    table.add_row(
        {name, TextTable::num(scale, 0),
         TextTable::num(with_pd.total_energy_j * 1e3, 3),
         TextTable::num(without.total_energy_j * 1e3, 3),
         TextTable::num(
             100.0 * (1.0 - with_pd.total_energy_j / without.total_energy_j),
             1) + "%",
         TextTable::num(100.0 * with_pd.idle_j / with_pd.total_energy_j, 1) +
             "%"});
  }

  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nPower-down saves 90% of the wait-time energy (leakage = 10% of\n"
      "normal power); the absolute saving grows with server compute time.");
  return 0;
}
