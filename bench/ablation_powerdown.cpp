// Ablation: the power-down mechanism (paper Section 2: during remote
// execution the processor, memory and receiver are powered down; leakage is
// 10% of normal power; the server's mobile status table queues responses
// until the client wakes).
//
// Compares client energy for the Remote strategy with power-down enabled vs
// disabled, and reports the idle-energy share. Apps whose server time is
// longer benefit more. The 6 apps x 2 settings grid runs on the parallel
// sweep engine with power-down as a per-cell client config.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "obs/export.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

using namespace javelin;

int main() {
  const auto t0 = std::chrono::steady_clock::now();
  TextTable table("Ablation — power-down during remote execution (Class 4)");
  table.set_header({"app", "scale", "E powered-down (mJ)", "E awake (mJ)",
                    "saving", "idle share (pd)"});

  const char* names[] = {"fe", "pf", "mf", "hpf", "ed", "sort"};
  constexpr std::size_t kNumApps = std::size(names);

  sim::SweepEngine engine;
  const auto runners = engine.map<std::shared_ptr<const sim::ScenarioRunner>>(
      kNumApps, [&names](std::size_t i) {
        return std::make_shared<const sim::ScenarioRunner>(
            apps::app(names[i]));
      });

  // Opt-in Chrome-trace capture (JAVELIN_TRACE_JSON): one track per cell.
  // Tracing is read-only — the table is bit-identical either way.
  obs::TraceCollector collector;
  const char* trace_path = std::getenv("JAVELIN_TRACE_JSON");
  std::vector<obs::TraceBuffer*> tracks(kNumApps * 2, nullptr);
  if (trace_path) {
    for (std::size_t cell = 0; cell < kNumApps * 2; ++cell)
      tracks[cell] = collector.make_buffer(
          std::string(names[cell / 2]) +
              (cell % 2 == 0 ? "/powerdown" : "/awake"),
          /*order_key=*/cell);
  }

  // Cell grid: [app][powerdown on/off].
  const auto cells = engine.map<sim::StrategyResult>(
      kNumApps * 2, [&runners, &names, &tracks](std::size_t cell) {
        rt::ClientConfig cfg;
        cfg.powerdown = cell % 2 == 0;
        const apps::App& a = apps::app(names[cell / 2]);
        return runners[cell / 2]->run_single(rt::Strategy::kRemote,
                                             a.large_scale,
                                             radio::PowerClass::kClass4,
                                             /*verify=*/true, &cfg,
                                             tracks[cell]);
      });

  for (std::size_t ai = 0; ai < kNumApps; ++ai) {
    const apps::App& a = apps::app(names[ai]);
    const sim::StrategyResult& with_pd = cells[ai * 2];
    const sim::StrategyResult& without = cells[ai * 2 + 1];
    if (!with_pd.all_correct || !without.all_correct) {
      std::fprintf(stderr, "FAIL: wrong result in %s\n", names[ai]);
      return 1;
    }
    table.add_row(
        {names[ai], TextTable::num(a.large_scale, 0),
         TextTable::num(with_pd.total_energy_j * 1e3, 3),
         TextTable::num(without.total_energy_j * 1e3, 3),
         TextTable::num(
             100.0 * (1.0 - with_pd.total_energy_j / without.total_energy_j),
             1) + "%",
         TextTable::num(100.0 * with_pd.idle_j / with_pd.total_energy_j, 1) +
             "%"});
  }

  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nPower-down saves 90% of the wait-time energy (leakage = 10% of\n"
      "normal power); the absolute saving grows with server compute time.");

  // Machine-readable perf trajectory record, same schema as BENCH_fig6.json.
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const std::size_t n_cells = kNumApps * 2;
  const char* json_path = std::getenv("JAVELIN_BENCH_JSON");
  sim::write_sweep_json(
      json_path ? json_path : "BENCH_ablation_powerdown.json",
      "ablation_powerdown", n_cells, /*executions=*/1, engine.jobs(), wall);
  std::fprintf(stderr,
               "[sweep] %zu cells, %d workers, %.2fs wall (%.2f cells/s)\n",
               n_cells, engine.jobs(), wall,
               wall > 0.0 ? static_cast<double>(n_cells) / wall : 0.0);

  if (trace_path &&
      !obs::export_chrome_trace(collector, "ablation_powerdown", trace_path))
    return 1;
  return 0;
}
