// Ablation: the opt-in L0.5 baseline tier (DecisionPolicy::baseline_tier).
//
// The ROADMAP's open item: the baseline tier's energy story — a one-off
// linear translation (~24x cheaper than an L1 compile) plus per-run
// interpretation discounted by the fused-stream dispatch share — is modeled
// but unmeasured. This bench measures it: AA runs the paper's 8 apps x 3
// situations grid with the knob off and on, recording total energy, how
// often the L0.5 candidate actually wins the decision, and the compile
// counts. Cells run on the parallel sweep engine; all randomness derives
// from per-cell seeds and the emitted BENCH_baseline_tier.json carries
// deterministic fields only, so table and file are byte-identical at any
// JAVELIN_JOBS.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/export.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

using namespace javelin;

namespace {

int mode_count(const sim::StrategyResult& r, rt::ExecMode mode) {
  const auto it = r.mode_counts.find(mode);
  return it == r.mode_counts.end() ? 0 : it->second;
}

}  // namespace

int main() {
  int executions = 120;
  if (const char* env = std::getenv("JAVELIN_ABLATION_EXECS"))
    executions = std::atoi(env);

  const std::vector<apps::App>& apps = apps::registry();
  const sim::Situation situations[] = {
      sim::Situation::kGoodChannelDominantSize,
      sim::Situation::kPoorChannelDominantSize,
      sim::Situation::kUniform,
  };
  constexpr std::size_t kNumSituations = 3;

  sim::SweepEngine engine;

  // Profile each app once, in parallel; the runners are then shared
  // read-only by both of each scenario's cells.
  const auto runners = engine.map<sim::ScenarioRunner>(
      apps.size(),
      [&](std::size_t i) { return sim::ScenarioRunner(apps[i]); });

  rt::ClientConfig baseline_config;
  baseline_config.decision.baseline_tier = true;

  // Cell layout: [app][situation][off, baseline], app-major.
  const std::size_t n = apps.size() * kNumSituations * 2;

  // Opt-in Chrome-trace capture (JAVELIN_TRACE_JSON): one track per cell.
  // Tracing is read-only — table and JSON are bit-identical either way.
  obs::TraceCollector collector;
  const char* trace_path = std::getenv("JAVELIN_TRACE_JSON");
  std::vector<obs::TraceBuffer*> tracks(n, nullptr);
  if (trace_path) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t app = i / (kNumSituations * 2);
      const std::size_t situation = (i / 2) % kNumSituations;
      tracks[i] = collector.make_buffer(
          apps[app].name + "/" + sim::situation_tag(situations[situation]) +
              ((i % 2) != 0 ? "/baseline" : "/off"),
          /*order_key=*/i);
    }
  }

  const auto results = engine.map<sim::StrategyResult>(n, [&](std::size_t i) {
    const std::size_t app = i / (kNumSituations * 2);
    const std::size_t situation = (i / 2) % kNumSituations;
    const bool baseline = (i % 2) != 0;
    return runners[app].run(rt::Strategy::kAdaptiveAdaptive,
                            situations[situation], executions,
                            /*verify=*/true,
                            baseline ? &baseline_config : nullptr, tracks[i]);
  });

  TextTable table("Ablation — L0.5 baseline tier (linear translation)");
  table.set_header({"app", "situation", "off (J)", "baseline (J)", "delta %",
                    "L0.5 runs", "compiles o/b"});
  for (std::size_t app = 0; app < apps.size(); ++app) {
    for (std::size_t s = 0; s < kNumSituations; ++s) {
      const std::size_t base = (app * kNumSituations + s) * 2;
      const sim::StrategyResult& off = results[base];
      const sim::StrategyResult& on = results[base + 1];
      if (!off.all_correct || !on.all_correct) {
        std::fprintf(stderr, "FAIL: wrong result in scenario %zu/%zu\n", app,
                     s);
        return 1;
      }
      const double delta =
          off.total_energy_j > 0.0
              ? 100.0 * (on.total_energy_j - off.total_energy_j) /
                    off.total_energy_j
              : 0.0;
      table.add_row({apps[app].name, sim::situation_tag(situations[s]),
                     TextTable::num(off.total_energy_j, 3),
                     TextTable::num(on.total_energy_j, 3),
                     TextTable::num(delta, 2),
                     std::to_string(mode_count(on, rt::ExecMode::kBaseline)),
                     std::to_string(off.compiles) + "/" +
                         std::to_string(on.compiles)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nbaseline = DecisionPolicy{baseline_tier}: decide() gains an L0.5\n"
      "candidate (one-off linear translation + discounted interpretation).\n"
      "It wins for methods invoked too rarely to amortize a real compile;\n"
      "delta < 0 means the tier saved energy versus the stock candidate\n"
      "set. 'L0.5 runs' counts invocations the candidate actually won.");

  // Machine-readable record (sweep schema; deterministic fields only — no
  // jobs/wall-clock — so the file is byte-identical at any JAVELIN_JOBS).
  const char* json_path = std::getenv("JAVELIN_BENCH_JSON");
  std::FILE* f =
      std::fopen(json_path ? json_path : "BENCH_baseline_tier.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write BENCH_baseline_tier.json\n");
    return 1;
  }
  std::fprintf(f, "{\"bench\": \"ablation_baseline\", \"executions\": %d, "
               "\"cells\": [", executions);
  for (std::size_t app = 0; app < apps.size(); ++app) {
    for (std::size_t s = 0; s < kNumSituations; ++s) {
      const std::size_t base = (app * kNumSituations + s) * 2;
      const sim::StrategyResult& off = results[base];
      const sim::StrategyResult& on = results[base + 1];
      std::fprintf(
          f,
          "%s\n  {\"app\": \"%s\", \"situation\": \"%s\", "
          "\"off_energy_j\": %.6f, \"baseline_energy_j\": %.6f, "
          "\"baseline_runs\": %d, "
          "\"off_compiles\": %d, \"baseline_compiles\": %d}",
          base ? "," : "", apps[app].name.c_str(),
          sim::situation_tag(situations[s]), off.total_energy_j,
          on.total_energy_j, mode_count(on, rt::ExecMode::kBaseline),
          off.compiles, on.compiles);
    }
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);

  if (trace_path &&
      !obs::export_chrome_trace(collector, "ablation_baseline", trace_path))
    return 1;
  return 0;
}
