// Ablation: server-side delay and the mobile status table (paper Section 2).
//
// "The estimate of the time for executing a method remotely at the server is
//  used by the client to determine the duration of its power-down state. ...
//  In case the server-side computation is delayed, we incur the penalty of
//  early re-activation of the client from the power-down state."
//
// We inject artificial server queueing delay and measure the client's energy
// for remote fe executions: with no delay the response is queued and the
// client sleeps its whole window (leakage only); with moderate delay the
// client wakes early and idles at full power; past the timeout it falls back
// to local execution. Each delay case owns a private server/client pair and
// runs as one cell on the parallel sweep engine.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "obs/export.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

using namespace javelin;

namespace {

struct CaseResult {
  double energy = 0.0;
  double idle = 0.0;
  double seconds = 0.0;
  int fallbacks = 0;
  bool response_queued = false;
  bool correct = true;
};

CaseResult run_case(const sim::ScenarioRunner& runner, double delay,
                    obs::TraceBuffer* trace) {
  const apps::App& fe = apps::app("fe");
  CaseResult out;
  rt::Server server;
  server.deploy(runner.profiled_classes());
  server.set_queue_delay(delay);
  radio::FixedChannel channel(radio::PowerClass::kClass4);
  net::Link link;
  rt::Client client(rt::ClientConfig{}, server, channel, link);
  if (trace) client.set_trace(trace);
  client.deploy(runner.profiled_classes());

  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const std::size_t mark = client.device().arena.heap_mark();
    const auto args = fe.make_args(
        client.device().vm, fe.profile_scales[fe.profile_scales.size() / 2],
        rng);
    rt::InvokeReport rep;
    const jvm::Value result =
        client.run(fe.cls, fe.method, args, rt::Strategy::kRemote, &rep);
    if (!fe.check(client.device().vm, args, client.device().vm, result))
      out.correct = false;
    out.energy += rep.energy_j;
    out.seconds += rep.seconds;
    if (rep.fallback_local) ++out.fallbacks;
    client.device().arena.heap_release(mark);
  }
  out.idle = client.device().meter.of(energy::Subsystem::kIdle);
  const rt::MobileStatus* st = server.status_of(1);
  out.response_queued = st && st->response_queued;
  return out;
}

}  // namespace

int main() {
  const auto t0 = std::chrono::steady_clock::now();
  const apps::App& fe = apps::app("fe");
  sim::ScenarioRunner runner(fe);

  TextTable table("Ablation — server queueing delay (fe remote, Class 4)");
  table.set_header({"server delay", "energy (mJ)", "idle (mJ)", "time (ms)",
                    "fallbacks", "queued response"});

  // Estimated server window for the dominant scale (for labelling only).
  const double est = runner.profile().server_cycles.eval(
                         fe.profile_scales[fe.profile_scales.size() / 2]) /
                     750e6;

  struct Case {
    const char* label;
    double delay;
  };
  const Case cases[] = {
      {"none", 0.0},
      {"half the window", est * 0.5},
      {"2x the window", est * 2.0},
      {"10x the window", est * 10.0},
      {"past timeout", 6.0},  // response_timeout_s defaults to 5 s
  };

  // Opt-in Chrome-trace capture (JAVELIN_TRACE_JSON): one track per case.
  // Tracing is read-only — the table is bit-identical either way.
  obs::TraceCollector collector;
  const char* trace_path = std::getenv("JAVELIN_TRACE_JSON");
  std::vector<obs::TraceBuffer*> tracks(std::size(cases), nullptr);
  if (trace_path) {
    for (std::size_t i = 0; i < std::size(cases); ++i)
      tracks[i] = collector.make_buffer(cases[i].label, /*order_key=*/i);
  }

  sim::SweepEngine engine;
  const auto results = engine.map<CaseResult>(
      std::size(cases), [&runner, &cases, &tracks](std::size_t i) {
        return run_case(runner, cases[i].delay, tracks[i]);
      });

  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const CaseResult& r = results[i];
    if (!r.correct) {
      std::fprintf(stderr, "FAIL: wrong result\n");
      return 1;
    }
    table.add_row({cases[i].label, TextTable::num(r.energy * 1e3, 3),
                   TextTable::num(r.idle * 1e3, 3),
                   TextTable::num(r.seconds * 1e3, 2),
                   std::to_string(r.fallbacks),
                   r.response_queued ? "yes" : "no"});
  }

  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nNo delay: the server finishes inside the client's power-down window\n"
      "and queues the response (leakage-only wait). Moderate delay: early\n"
      "re-activation burns idle energy at full power. Past the timeout: the\n"
      "client gives up and executes locally (fallbacks = 10).");

  // Machine-readable perf trajectory record, same schema as BENCH_fig6.json.
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const std::size_t n_cells = std::size(cases);
  const char* json_path = std::getenv("JAVELIN_BENCH_JSON");
  sim::write_sweep_json(
      json_path ? json_path : "BENCH_ablation_server_delay.json",
      "ablation_server_delay", n_cells, /*executions=*/10, engine.jobs(),
      wall);
  std::fprintf(stderr,
               "[sweep] %zu cells, %d workers, %.2fs wall (%.2f cells/s)\n",
               n_cells, engine.jobs(), wall,
               wall > 0.0 ? static_cast<double>(n_cells) / wall : 0.0);

  if (trace_path && !obs::export_chrome_trace(collector,
                                              "ablation_server_delay",
                                              trace_path))
    return 1;
  return 0;
}
