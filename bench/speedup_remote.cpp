// Reproduces the Section 3.2 performance claim: "When using a 750MHz SPARC
// server and a 2.3Mbps wireless channel, we find that performance
// improvements (over local client execution) vary between 2.5 times speedup
// and 10 times speedup based on input sizes whenever remote execution is
// preferred. However, remote execution could be detrimental to performance
// if the communication time dominates the computation time."
//
// For each app and input scale we measure wall-clock of local Level-1
// execution vs remote execution at Class 4, and report the speedup together
// with whether the energy model would actually prefer remote execution.

#include <cstdio>

#include "sim/scenario.hpp"
#include "support/table.hpp"

using namespace javelin;

int main() {
  TextTable table("Remote-execution speedup over local execution (Class 4)");
  table.set_header({"app", "scale", "local L1 (ms)", "remote (ms)", "speedup",
                    "remote preferred (energy)"});

  for (const apps::App& a : apps::registry()) {
    sim::ScenarioRunner runner(a);
    const jvm::EnergyProfile& prof = runner.profile();
    const double clock = isa::client_machine().clock_hz;
    for (double scale : {a.profile_scales.front(), a.profile_scales.back(),
                         a.large_scale}) {
      const auto remote = runner.run_single(rt::Strategy::kRemote, scale,
                                            radio::PowerClass::kClass4);
      if (!remote.all_correct) {
        std::fprintf(stderr, "FAIL: wrong result in %s\n", a.name.c_str());
        return 1;
      }
      // Steady-state local time (compiled code already installed) from the
      // deploy-time profile; remote time measured end to end (serialize +
      // uplink + server compute + downlink + deserialize).
      Rng rng(7);
      rt::Device probe(isa::client_machine());
      probe.deploy(runner.profiled_classes());
      const auto args = a.make_args(probe.vm, scale, rng);
      const double s = rt::Client::size_param(
          probe.vm, *probe.vm.method(probe.vm.find_method(a.cls, a.method))
                         .info,
          args);
      const double local_seconds =
          std::max(0.0, prof.local_cycles[1].eval(s)) / clock;
      // Remote energy preference from the same profile-based estimate the
      // helper method uses (steady-state local L1 energy vs remote energy).
      const radio::CommModel comm;
      const double remote_energy = remote.total_energy_j;
      const double local_energy =
          std::max(0.0, prof.local_energy[1].eval(s));
      table.add_row(
          {a.name, TextTable::num(scale, 0),
           TextTable::num(local_seconds * 1e3, 2),
           TextTable::num(remote.total_seconds * 1e3, 2),
           TextTable::num(local_seconds / remote.total_seconds, 2),
           remote_energy < local_energy ? "yes" : "no"});
      (void)comm;
    }
  }

  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nPaper shape check: where remote execution is preferred, speedups\n"
      "fall in the ~2.5x-10x band; where communication dominates, remote is\n"
      "slower (and also worse for energy).");
  return 0;
}
