// Ablation: the EWMA weights u1 = u2 (paper Section 3.2: "According to our
// experiments, setting both u1 and u2 to 0.7 yields satisfactory results").
//
// Sweeps the weight for the AL strategy under the uniform scenario (where
// prediction matters most) and reports total energy. u = 0 means "trust only
// the newest sample"; u = 1 means "never update the first estimate".
//
// The 4 apps x 6 weights grid runs on the parallel sweep engine: each app is
// profiled once, and every cell passes its weight as a per-cell client
// config, so the shared runners stay immutable.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "obs/export.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

using namespace javelin;

int main() {
  const auto t0 = std::chrono::steady_clock::now();
  int execs = 150;
  if (const char* env = std::getenv("JAVELIN_ABLATION_EXECS"))
    execs = std::atoi(env);

  TextTable table("Ablation — EWMA weight sweep (AL, uniform scenario)");
  table.set_header({"app", "u=0.0", "u=0.3", "u=0.5", "u=0.7", "u=0.9",
                    "u=1.0"});

  const double weights[] = {0.0, 0.3, 0.5, 0.7, 0.9, 1.0};
  const char* names[] = {"fe", "mf", "hpf", "sort"};
  constexpr std::size_t kNumApps = std::size(names);
  constexpr std::size_t kNumWeights = std::size(weights);

  sim::SweepEngine engine;
  const auto runners = engine.map<std::shared_ptr<const sim::ScenarioRunner>>(
      kNumApps, [&names](std::size_t i) {
        return std::make_shared<const sim::ScenarioRunner>(
            apps::app(names[i]));
      });

  // Opt-in Chrome-trace capture (JAVELIN_TRACE_JSON): one track per cell.
  // Tracing is read-only — the table is bit-identical either way.
  obs::TraceCollector collector;
  const char* trace_path = std::getenv("JAVELIN_TRACE_JSON");
  std::vector<obs::TraceBuffer*> tracks(kNumApps * kNumWeights, nullptr);
  if (trace_path) {
    for (std::size_t cell = 0; cell < kNumApps * kNumWeights; ++cell) {
      char label[64];
      std::snprintf(label, sizeof label, "%s/u=%g",
                    names[cell / kNumWeights], weights[cell % kNumWeights]);
      tracks[cell] = collector.make_buffer(label, /*order_key=*/cell);
    }
  }

  const auto cells = engine.map<sim::StrategyResult>(
      kNumApps * kNumWeights,
      [&runners, &weights, &tracks, execs](std::size_t cell) {
        rt::ClientConfig cfg;
        cfg.u1 = cfg.u2 = weights[cell % kNumWeights];
        return runners[cell / kNumWeights]->run(
            rt::Strategy::kAdaptiveLocal, sim::Situation::kUniform, execs,
            /*verify=*/true, &cfg, tracks[cell]);
      });

  for (std::size_t ai = 0; ai < kNumApps; ++ai) {
    std::vector<std::string> row{names[ai]};
    double at07 = 0.0;
    std::vector<double> energies;
    for (std::size_t wi = 0; wi < kNumWeights; ++wi) {
      const sim::StrategyResult& r = cells[ai * kNumWeights + wi];
      if (!r.all_correct) {
        std::fprintf(stderr, "FAIL: wrong result in %s\n", names[ai]);
        return 1;
      }
      energies.push_back(r.total_energy_j);
      if (weights[wi] == 0.7) at07 = r.total_energy_j;
    }
    for (double e : energies)
      row.push_back(TextTable::num(e / at07, 3));  // normalized to u=0.7
    table.add_row(std::move(row));
  }

  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nValues normalized to u=0.7 (the paper's choice); ~1.0 across the row\n"
      "means the decision logic is robust to the weight, as the paper's\n"
      "'satisfactory results' phrasing suggests.");

  // Machine-readable perf trajectory record, same schema as BENCH_fig6.json.
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const std::size_t n_cells = kNumApps * kNumWeights;
  const char* json_path = std::getenv("JAVELIN_BENCH_JSON");
  sim::write_sweep_json(json_path ? json_path : "BENCH_ablation_ewma.json",
                        "ablation_ewma", n_cells, execs, engine.jobs(), wall);
  std::fprintf(stderr,
               "[sweep] %zu cells, %d workers, %.2fs wall (%.2f cells/s)\n",
               n_cells, engine.jobs(), wall,
               wall > 0.0 ? static_cast<double>(n_cells) / wall : 0.0);

  if (trace_path &&
      !obs::export_chrome_trace(collector, "ablation_ewma", trace_path))
    return 1;
  return 0;
}
