// Ablation: the memory system (paper Section 2 — 16 KB I-cache, 8 KB
// direct-mapped D-cache, DRAM at 4.94 nJ/access).
//
// Runs one Level-2 execution of each benchmark under three client memory
// configurations and reports total energy, the DRAM energy share, and
// execution time. The per-instruction energies (Fig 1) already include cache
// access energy, so geometry shows up through DRAM accesses and miss-stall
// cycles — this bench quantifies how much the headline numbers owe to the
// memory system the paper modelled. The 4 apps x 3 geometries grid runs on
// the parallel sweep engine with the machine config as per-cell state.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "obs/export.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

using namespace javelin;

namespace {

isa::MachineConfig with_caches(std::size_t icache, std::size_t dcache) {
  isa::MachineConfig m = isa::client_machine();
  m.icache = {icache, 32};
  m.dcache = {dcache, 32};
  return m;
}

}  // namespace

int main() {
  const auto t0 = std::chrono::steady_clock::now();
  struct Config {
    const char* name;
    isa::MachineConfig machine;
  };
  const Config configs[] = {
      {"tiny 1K/1K", with_caches(1024, 1024)},
      {"paper 16K/8K", with_caches(16 * 1024, 8 * 1024)},
      {"large 256K/256K", with_caches(256 * 1024, 256 * 1024)},
  };
  const char* names[] = {"mf", "hpf", "ed", "sort"};
  constexpr std::size_t kNumApps = std::size(names);
  constexpr std::size_t kNumConfigs = std::size(configs);

  TextTable table("Ablation — cache geometry (one L2 execution, Class 4)");
  table.set_header({"app", "config", "energy (mJ)", "dram share", "time (ms)"});

  sim::SweepEngine engine;
  const auto runners = engine.map<std::shared_ptr<const sim::ScenarioRunner>>(
      kNumApps, [&names](std::size_t i) {
        return std::make_shared<const sim::ScenarioRunner>(
            apps::app(names[i]));
      });

  // Opt-in Chrome-trace capture (JAVELIN_TRACE_JSON): one track per cell.
  // Tracing is read-only — the table is bit-identical either way.
  obs::TraceCollector collector;
  const char* trace_path = std::getenv("JAVELIN_TRACE_JSON");
  std::vector<obs::TraceBuffer*> tracks(kNumApps * kNumConfigs, nullptr);
  if (trace_path) {
    for (std::size_t cell = 0; cell < kNumApps * kNumConfigs; ++cell)
      tracks[cell] = collector.make_buffer(
          std::string(names[cell / kNumConfigs]) + "/" +
              configs[cell % kNumConfigs].name,
          /*order_key=*/cell);
  }

  const auto cells = engine.map<sim::StrategyResult>(
      kNumApps * kNumConfigs,
      [&runners, &configs, &names, &tracks](std::size_t cell) {
        rt::ClientConfig cfg;
        cfg.machine = configs[cell % kNumConfigs].machine;
        const apps::App& a = apps::app(names[cell / kNumConfigs]);
        return runners[cell / kNumConfigs]->run_single(
            rt::Strategy::kLocal2, a.large_scale, radio::PowerClass::kClass4,
            /*verify=*/true, &cfg, tracks[cell]);
      });

  for (std::size_t ai = 0; ai < kNumApps; ++ai) {
    for (std::size_t ci = 0; ci < kNumConfigs; ++ci) {
      const sim::StrategyResult& r = cells[ai * kNumConfigs + ci];
      if (!r.all_correct) {
        std::fprintf(stderr, "FAIL: wrong result in %s\n", names[ai]);
        return 1;
      }
      table.add_row(
          {names[ai], configs[ci].name,
           TextTable::num(r.total_energy_j * 1e3, 3),
           TextTable::num(100.0 * r.dram_j / r.total_energy_j, 1) + "%",
           TextTable::num(r.total_seconds * 1e3, 2)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nSmaller caches raise both the DRAM energy share and execution time\n"
      "(miss stalls); the paper's 16K/8K point sits between the extremes.");

  // Machine-readable perf trajectory record, same schema as BENCH_fig6.json.
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const std::size_t n_cells = kNumApps * kNumConfigs;
  const char* json_path = std::getenv("JAVELIN_BENCH_JSON");
  sim::write_sweep_json(json_path ? json_path : "BENCH_ablation_cache.json",
                        "ablation_cache", n_cells, /*executions=*/1,
                        engine.jobs(), wall);
  std::fprintf(stderr,
               "[sweep] %zu cells, %d workers, %.2fs wall (%.2f cells/s)\n",
               n_cells, engine.jobs(), wall,
               wall > 0.0 ? static_cast<double>(n_cells) / wall : 0.0);

  if (trace_path &&
      !obs::export_chrome_trace(collector, "ablation_cache", trace_path))
    return 1;
  return 0;
}
