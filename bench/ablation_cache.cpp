// Ablation: the memory system (paper Section 2 — 16 KB I-cache, 8 KB
// direct-mapped D-cache, DRAM at 4.94 nJ/access).
//
// Runs one Level-2 execution of each benchmark under three client memory
// configurations and reports total energy, the DRAM energy share, and
// execution time. The per-instruction energies (Fig 1) already include cache
// access energy, so geometry shows up through DRAM accesses and miss-stall
// cycles — this bench quantifies how much the headline numbers owe to the
// memory system the paper modelled.

#include <cstdio>

#include "sim/scenario.hpp"
#include "support/table.hpp"

using namespace javelin;

namespace {

isa::MachineConfig with_caches(std::size_t icache, std::size_t dcache) {
  isa::MachineConfig m = isa::client_machine();
  m.icache = {icache, 32};
  m.dcache = {dcache, 32};
  return m;
}

}  // namespace

int main() {
  struct Config {
    const char* name;
    isa::MachineConfig machine;
  };
  const Config configs[] = {
      {"tiny 1K/1K", with_caches(1024, 1024)},
      {"paper 16K/8K", with_caches(16 * 1024, 8 * 1024)},
      {"large 256K/256K", with_caches(256 * 1024, 256 * 1024)},
  };

  TextTable table("Ablation — cache geometry (one L2 execution, Class 4)");
  table.set_header({"app", "config", "energy (mJ)", "dram share", "time (ms)"});

  for (const char* name : {"mf", "hpf", "ed", "sort"}) {
    const apps::App& a = apps::app(name);
    sim::ScenarioRunner runner(a);
    for (const Config& cfg : configs) {
      runner.client_config.machine = cfg.machine;
      const auto r = runner.run_single(rt::Strategy::kLocal2, a.large_scale,
                                       radio::PowerClass::kClass4);
      if (!r.all_correct) {
        std::fprintf(stderr, "FAIL: wrong result in %s\n", name);
        return 1;
      }
      table.add_row(
          {name, cfg.name, TextTable::num(r.total_energy_j * 1e3, 3),
           TextTable::num(100.0 * r.dram_j / r.total_energy_j, 1) + "%",
           TextTable::num(r.total_seconds * 1e3, 2)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nSmaller caches raise both the DRAM energy share and execution time\n"
      "(miss stalls); the paper's 16K/8K point sits between the extremes.");
  return 0;
}
