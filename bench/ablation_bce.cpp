// Ablation: bounds-check elimination (the Level-3 extra pass).
//
// The paper discusses optimization-level tradeoffs (code size vs execution
// gain); BCE is the canonical Java-JIT optimization in that space. This
// bench compiles each benchmark at Level 3 under four regimes — BCE off,
// per-method BCE (dominating-access proofs only), cross-procedure BCE
// (per-method proofs plus the interprocedural array-length-fact pass,
// analysis/lengths.hpp), and range BCE (all of the above plus per-bytecode
// "index proven in [0, length)" proofs from the interval analysis,
// analysis/intervals.hpp) — and measures executed instructions, execution
// energy, code size and elided guards for one large-input run. Each
// (app, regime) cell owns a private Device, so the 8 x 4 grid fans out on
// the parallel sweep engine.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/intervals.hpp"
#include "analysis/lengths.hpp"
#include "jit/compiler.hpp"
#include "obs/export.hpp"
#include "rt/device.hpp"
#include "apps/app.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

using namespace javelin;

namespace {

struct CellResult {
  double energy = 0.0;
  std::uint64_t instrs = 0;
  std::size_t code_bytes = 0;
  std::size_t elided = 0;           ///< Guards elided, all proofs.
  std::size_t elided_interproc = 0; ///< Of which interprocedural facts.
  std::size_t elided_range = 0;     ///< Of which interval range proofs.
  bool correct = false;
};

/// Regimes: 0 = BCE off, 1 = per-method BCE, 2 = per-method + interproc,
/// 3 = per-method + interproc + interval range proofs.
constexpr int kNumRegimes = 4;

/// Per-method jit facts from the interprocedural length pass (the same
/// conversion rt::Client::seed_length_facts performs at deploy time).
std::vector<std::vector<jit::ArrayParamFact>> length_facts(const jvm::Jvm& vm) {
  std::vector<const jvm::ClassFile*> classes;
  for (std::size_t c = 0; c < vm.num_classes(); ++c)
    classes.push_back(&vm.cls(static_cast<std::int32_t>(c)).cf);
  const analysis::LengthAnalysis la = analysis::analyze_lengths(classes);
  std::vector<std::vector<jit::ArrayParamFact>> out(vm.num_methods());
  if (la.incomplete) return out;  // Fail closed: no facts anywhere.
  for (std::size_t i = 0; i < vm.num_methods(); ++i) {
    const analysis::MethodLengthFacts* f =
        la.find(vm.method(static_cast<std::int32_t>(i)).info);
    if (f == nullptr || !f->valid()) continue;
    std::vector<jit::ArrayParamFact> facts(f->params.size());
    bool any = false;
    for (std::size_t p = 0; p < f->params.size(); ++p) {
      facts[p].non_null = f->params[p].non_null;
      facts[p].min_len = f->params[p].min_len;
      any = any || facts[p].non_null;
    }
    if (any) out[i] = std::move(facts);
  }
  return out;
}

/// Per-method, per-bytecode in-bounds proofs from the interval analysis
/// (the same conversion rt::Client::seed_range_facts performs at deploy
/// time), with entry states refined by the length facts.
std::vector<std::vector<std::uint8_t>> range_facts(const jvm::Jvm& vm) {
  std::vector<const jvm::ClassFile*> classes;
  for (std::size_t c = 0; c < vm.num_classes(); ++c)
    classes.push_back(&vm.cls(static_cast<std::int32_t>(c)).cf);
  jvm::ClassSetResolver resolver;
  for (const jvm::ClassFile* cf : classes) resolver.add(cf);
  const analysis::LengthAnalysis la = analysis::analyze_lengths(classes);
  std::vector<std::vector<std::uint8_t>> out(vm.num_methods());
  for (std::size_t i = 0; i < vm.num_methods(); ++i) {
    const jvm::RtMethod& m = vm.method(static_cast<std::int32_t>(i));
    std::vector<analysis::ArgFact> facts;
    if (const analysis::MethodLengthFacts* f =
            la.incomplete ? nullptr : la.find(m.info);
        f != nullptr && f->valid()) {
      facts.resize(f->params.size());
      for (std::size_t p = 0; p < f->params.size(); ++p) {
        if (!f->params[p].non_null) continue;
        facts[p].non_null = true;
        facts[p].is_array = true;
        facts[p].array_len = analysis::Interval{f->params[p].min_len,
                                                analysis::Interval::kI32Max};
      }
    }
    const analysis::MethodIntervals mi = analysis::analyze_intervals(
        vm.cls(m.class_id).cf, *m.info, &resolver, facts);
    if (!mi.converged) continue;  // Fail closed.
    bool any = false;
    for (const char flag : mi.proven_inbounds) any = any || flag != 0;
    if (any) out[i].assign(mi.proven_inbounds.begin(),
                           mi.proven_inbounds.end());
  }
  return out;
}

CellResult run_cell(const apps::App& a, int regime, obs::TraceBuffer* trace) {
  CellResult out;
  rt::Device dev(isa::client_machine());
  dev.core.step_limit = 200'000'000'000ULL;
  if (trace) dev.engine.set_trace(trace);
  dev.deploy(a.classes);
  const std::int32_t mid = dev.vm.find_method(a.cls, a.method);
  std::vector<std::int32_t> plan{mid};
  for (auto c : jit::collect_callees(dev.vm, mid)) plan.push_back(c);
  std::vector<std::vector<jit::ArrayParamFact>> facts;
  if (regime >= 2) facts = length_facts(dev.vm);
  std::vector<std::vector<std::uint8_t>> ranges;
  if (regime >= 3) ranges = range_facts(dev.vm);
  jit::CompileOptions opts;
  opts.opt_level = 3;
  opts.bounds_check_elimination = regime != 0;
  for (auto id : plan) {
    if (regime >= 2 && static_cast<std::size_t>(id) < facts.size() &&
        !facts[static_cast<std::size_t>(id)].empty())
      opts.param_facts = &facts[static_cast<std::size_t>(id)];
    else
      opts.param_facts = nullptr;
    if (regime >= 3 && static_cast<std::size_t>(id) < ranges.size() &&
        !ranges[static_cast<std::size_t>(id)].empty())
      opts.range_inbounds = &ranges[static_cast<std::size_t>(id)];
    else
      opts.range_inbounds = nullptr;
    auto res = jit::compile_method(dev.vm, id, opts, dev.cfg.energy, trace);
    out.code_bytes += res.program.image_bytes();
    out.elided += res.guards_elided;
    out.elided_interproc += res.guards_elided_interproc;
    out.elided_range += res.guards_elided_range;
    dev.engine.install(id, std::move(res.program), 3);
  }
  Rng rng(11);
  const std::size_t mark = dev.arena.heap_mark();
  const auto args = a.make_args(dev.vm, a.large_scale, rng);
  const auto e0 = dev.meter.snapshot();
  const jvm::Value result = dev.engine.invoke(mid, args);
  out.correct = a.check(dev.vm, args, dev.vm, result);
  const auto d = dev.meter.since(e0);
  out.energy = d.total();
  out.instrs = d.counts().total();
  dev.arena.heap_release(mark);
  return out;
}

const char* regime_name(int regime) {
  switch (regime) {
    case 0: return "off";
    case 1: return "on";
    case 2: return "interproc";
    default: return "range";
  }
}

}  // namespace

int main() {
  const auto t0 = std::chrono::steady_clock::now();
  TextTable table("Ablation — bounds-check elimination at Level 3");
  table.set_header({"app", "BCE", "exec energy (mJ)", "instrs", "code bytes",
                    "elided", "saving"});

  const auto& registry = apps::registry();
  sim::SweepEngine engine;

  // Cell grid: [app][regime].
  const std::size_t n_cells = registry.size() * kNumRegimes;

  // Opt-in Chrome-trace capture (JAVELIN_TRACE_JSON): one track per cell.
  // Tracing is read-only — the table is bit-identical either way.
  obs::TraceCollector collector;
  const char* trace_path = std::getenv("JAVELIN_TRACE_JSON");
  std::vector<obs::TraceBuffer*> tracks(n_cells, nullptr);
  if (trace_path) {
    for (std::size_t cell = 0; cell < n_cells; ++cell)
      tracks[cell] = collector.make_buffer(
          registry[cell / kNumRegimes].name + "/bce=" +
              regime_name(static_cast<int>(cell % kNumRegimes)),
          /*order_key=*/cell);
  }

  const auto cells = engine.map<CellResult>(
      n_cells, [&registry, &tracks](std::size_t cell) {
        return run_cell(registry[cell / kNumRegimes],
                        static_cast<int>(cell % kNumRegimes), tracks[cell]);
      });

  for (std::size_t ai = 0; ai < registry.size(); ++ai) {
    const apps::App& a = registry[ai];
    const CellResult* r = &cells[ai * kNumRegimes];
    for (int regime = 0; regime < kNumRegimes; ++regime) {
      if (!r[regime].correct) {
        std::fprintf(stderr, "FAIL: %s wrong result (regime=%s)\n",
                     a.name.c_str(), regime_name(regime));
        return 1;
      }
    }
    for (int regime = 0; regime < kNumRegimes; ++regime) {
      std::string elided = std::to_string(r[regime].elided);
      if (r[regime].elided_interproc > 0)
        elided += " (+" + std::to_string(r[regime].elided_interproc) + " ip)";
      if (r[regime].elided_range > 0)
        elided += " (+" + std::to_string(r[regime].elided_range) + " rg)";
      table.add_row(
          {a.name, regime_name(regime),
           TextTable::num(r[regime].energy * 1e3, 3),
           std::to_string(r[regime].instrs),
           std::to_string(r[regime].code_bytes), elided,
           regime ? TextTable::num(
                        100.0 * (1.0 - r[regime].energy / r[0].energy), 1) +
                        "%"
                  : ""});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nBCE removes guards proven by a dominating access to the same\n"
      "(array, index) pair; kernels that re-read elements through the same\n"
      "registers (ed's hysteresis, sort) gain, and their code images shrink;\n"
      "kernels whose indices are recomputed per access are unaffected.\n"
      "The interproc regime adds parameter facts proven across call\n"
      "boundaries, so even first accesses to parameter arrays drop guards;\n"
      "the range regime adds per-bytecode interval proofs (index in\n"
      "[0, length) from the abstract interpretation), catching\n"
      "locally-allocated arrays and loop-bounded indices;\n"
      "shadow-bounds mode (JAVELIN_SHADOW=1) cross-validates every elision.");

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const char* json_path = std::getenv("JAVELIN_BENCH_JSON");
  sim::write_sweep_json(json_path ? json_path : "BENCH_ablation_bce.json",
                        "ablation_bce", n_cells, /*executions=*/1,
                        engine.jobs(), wall);
  std::fprintf(stderr,
               "[sweep] %zu cells, %d workers, %.2fs wall (%.2f cells/s)\n",
               n_cells, engine.jobs(), wall,
               wall > 0.0 ? static_cast<double>(n_cells) / wall : 0.0);

  if (trace_path &&
      !obs::export_chrome_trace(collector, "ablation_bce", trace_path))
    return 1;
  return 0;
}
