// Ablation: bounds-check elimination (the Level-3 extra pass).
//
// The paper discusses optimization-level tradeoffs (code size vs execution
// gain); BCE is the canonical Java-JIT optimization in that space. This
// bench compiles each benchmark at Level 3 with and without BCE and measures
// executed instructions, execution energy and code size for one large-input
// run.

#include <cstdio>

#include "jit/compiler.hpp"
#include "rt/device.hpp"
#include "apps/app.hpp"
#include "support/table.hpp"

using namespace javelin;

int main() {
  TextTable table("Ablation — bounds-check elimination at Level 3");
  table.set_header({"app", "BCE", "exec energy (mJ)", "instrs", "code bytes",
                    "saving"});

  for (const apps::App& a : apps::registry()) {
    double energy[2] = {};
    std::uint64_t instrs[2] = {};
    std::size_t code_bytes[2] = {};
    for (int bce = 0; bce < 2; ++bce) {
      rt::Device dev(isa::client_machine());
      dev.core.step_limit = 200'000'000'000ULL;
      dev.deploy(a.classes);
      const std::int32_t mid = dev.vm.find_method(a.cls, a.method);
      std::vector<std::int32_t> plan{mid};
      for (auto c : jit::collect_callees(dev.vm, mid)) plan.push_back(c);
      jit::CompileOptions opts;
      opts.opt_level = 3;
      opts.bounds_check_elimination = bce != 0;
      for (auto id : plan) {
        auto res = jit::compile_method(dev.vm, id, opts, dev.cfg.energy);
        code_bytes[bce] += res.program.image_bytes();
        dev.engine.install(id, std::move(res.program), 3);
      }
      Rng rng(11);
      const std::size_t mark = dev.arena.heap_mark();
      const auto args = a.make_args(dev.vm, a.large_scale, rng);
      const auto e0 = dev.meter.snapshot();
      const jvm::Value result = dev.engine.invoke(mid, args);
      if (!a.check(dev.vm, args, dev.vm, result)) {
        std::fprintf(stderr, "FAIL: %s wrong result (bce=%d)\n",
                     a.name.c_str(), bce);
        return 1;
      }
      const auto d = dev.meter.since(e0);
      energy[bce] = d.total();
      instrs[bce] = d.counts().total();
      dev.arena.heap_release(mark);
    }
    for (int bce = 0; bce < 2; ++bce) {
      table.add_row(
          {a.name, bce ? "on" : "off", TextTable::num(energy[bce] * 1e3, 3),
           std::to_string(instrs[bce]), std::to_string(code_bytes[bce]),
           bce ? TextTable::num(100.0 * (1.0 - energy[1] / energy[0]), 1) + "%"
               : ""});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nBCE removes guards proven by a dominating access to the same\n"
      "(array, index) pair; kernels that re-read elements through the same\n"
      "registers (ed's hysteresis, sort) gain, and their code images shrink;\n"
      "kernels whose indices are recomputed per access are unaffected.");
  return 0;
}
