// Ablation: bounds-check elimination (the Level-3 extra pass).
//
// The paper discusses optimization-level tradeoffs (code size vs execution
// gain); BCE is the canonical Java-JIT optimization in that space. This
// bench compiles each benchmark at Level 3 with and without BCE and measures
// executed instructions, execution energy and code size for one large-input
// run. Each (app, bce) cell owns a private Device, so the 8 x 2 grid fans
// out on the parallel sweep engine.

#include <cstdio>

#include "jit/compiler.hpp"
#include "rt/device.hpp"
#include "apps/app.hpp"
#include "sim/sweep.hpp"
#include "support/table.hpp"

using namespace javelin;

namespace {

struct CellResult {
  double energy = 0.0;
  std::uint64_t instrs = 0;
  std::size_t code_bytes = 0;
  bool correct = false;
};

CellResult run_cell(const apps::App& a, bool bce) {
  CellResult out;
  rt::Device dev(isa::client_machine());
  dev.core.step_limit = 200'000'000'000ULL;
  dev.deploy(a.classes);
  const std::int32_t mid = dev.vm.find_method(a.cls, a.method);
  std::vector<std::int32_t> plan{mid};
  for (auto c : jit::collect_callees(dev.vm, mid)) plan.push_back(c);
  jit::CompileOptions opts;
  opts.opt_level = 3;
  opts.bounds_check_elimination = bce;
  for (auto id : plan) {
    auto res = jit::compile_method(dev.vm, id, opts, dev.cfg.energy);
    out.code_bytes += res.program.image_bytes();
    dev.engine.install(id, std::move(res.program), 3);
  }
  Rng rng(11);
  const std::size_t mark = dev.arena.heap_mark();
  const auto args = a.make_args(dev.vm, a.large_scale, rng);
  const auto e0 = dev.meter.snapshot();
  const jvm::Value result = dev.engine.invoke(mid, args);
  out.correct = a.check(dev.vm, args, dev.vm, result);
  const auto d = dev.meter.since(e0);
  out.energy = d.total();
  out.instrs = d.counts().total();
  dev.arena.heap_release(mark);
  return out;
}

}  // namespace

int main() {
  TextTable table("Ablation — bounds-check elimination at Level 3");
  table.set_header({"app", "BCE", "exec energy (mJ)", "instrs", "code bytes",
                    "saving"});

  const auto& registry = apps::registry();
  sim::SweepEngine engine;

  // Cell grid: [app][bce off/on].
  const auto cells = engine.map<CellResult>(
      registry.size() * 2, [&registry](std::size_t cell) {
        return run_cell(registry[cell / 2], cell % 2 != 0);
      });

  for (std::size_t ai = 0; ai < registry.size(); ++ai) {
    const apps::App& a = registry[ai];
    const CellResult* r = &cells[ai * 2];
    for (int bce = 0; bce < 2; ++bce) {
      if (!r[bce].correct) {
        std::fprintf(stderr, "FAIL: %s wrong result (bce=%d)\n",
                     a.name.c_str(), bce);
        return 1;
      }
    }
    for (int bce = 0; bce < 2; ++bce) {
      table.add_row(
          {a.name, bce ? "on" : "off",
           TextTable::num(r[bce].energy * 1e3, 3),
           std::to_string(r[bce].instrs), std::to_string(r[bce].code_bytes),
           bce ? TextTable::num(100.0 * (1.0 - r[1].energy / r[0].energy), 1) +
                     "%"
               : ""});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nBCE removes guards proven by a dominating access to the same\n"
      "(array, index) pair; kernels that re-read elements through the same\n"
      "registers (ed's hysteresis, sort) gain, and their code images shrink;\n"
      "kernels whose indices are recomputed per access are unaffected.");
  return 0;
}
